/**
 * @file
 * Structured RunResult export (JSON / CSV).
 *
 * Numbers are formatted with "%.17g" so that a serialized result parses
 * back to the exact same double — the runner's determinism guarantee
 * ("parallel sweep == serial sweep") extends to the report files.
 */

#include "sim/stats.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/json.h"

namespace ufc {
namespace sim {

void
validateRunOptions(const RunOptions &opts)
{
    UFC_EXPECT(opts.prefetchWindow >= -1, ConfigError,
               "RunOptions.prefetchWindow must be >= -1 (-1 = model "
               "default, 0 = no lookahead), got "
                   << opts.prefetchWindow);
    UFC_EXPECT(opts.prefetchWindow <= (1 << 20), ConfigError,
               "RunOptions.prefetchWindow is absurdly large: "
                   << opts.prefetchWindow);
    UFC_EXPECT(!(opts.boundsCheck && opts.execMode == ExecMode::TraceIr),
               ConfigError,
               "RunOptions.boundsCheck needs a compiled Program to "
               "bound; it is incompatible with ExecMode::TraceIr");
}

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Shared JSON string escaping (common/json.h). */
std::string
jsonStr(const std::string &s)
{
    return json::quote(s);
}

/** CSV field quoting per RFC 4180 (only when needed). */
std::string
csvStr(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

} // namespace

double
RunResult::opEnergyJ(isa::HwOp op) const
{
    const OpStats &o = stats.opStats[static_cast<int>(op)];
    if (o.count == 0)
        return 0.0;
    double computeTotal = 0.0;
    for (const auto &row : stats.opStats)
        computeTotal += row.computeCycles;
    double e = 0.0;
    if (computeTotal > 0)
        e += energyDynamicJ() * (o.computeCycles / computeTotal);
    if (stats.hbmBytes > 0)
        e += energyHbmJ * (o.hbmBytes / stats.hbmBytes);
    if (stats.totalCycles > 0)
        e += energyStaticJ * (o.cycles / stats.totalCycles);
    return e;
}

std::string
RunResult::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":" << jsonStr(kRunResultSchema)
       << ",\"label\":" << jsonStr(label)
       << ",\"machine\":" << jsonStr(machine)
       << ",\"workload\":" << jsonStr(workload)
       << ",\"seconds\":" << num(seconds)
       << ",\"energy_j\":" << num(energyJ)
       << ",\"power_w\":" << num(powerW)
       << ",\"area_mm2\":" << num(areaMm2)
       << ",\"edp\":" << num(edp())
       << ",\"edap\":" << num(edap())
       << ",\"host_seconds\":" << num(hostSeconds);
    if (verbosity == StatsVerbosity::Full) {
        os << ",\"stats\":{"
           << "\"total_cycles\":" << num(stats.totalCycles)
           << ",\"inst_count\":" << stats.instCount
           << ",\"hbm_bytes\":" << num(stats.hbmBytes)
           << ",\"spad_hit_bytes\":" << num(stats.spadHitBytes)
           << ",\"hbm_utilization\":" << num(stats.hbmUtilization())
           << ",\"pe_utilization\":" << num(stats.peUtilization())
           << ",\"utilization\":{";
        for (int i = 0; i < isa::kNumResources; ++i) {
            const auto r = static_cast<isa::Resource>(i);
            if (i)
                os << ",";
            os << jsonStr(isa::resourceName(r)) << ":"
               << num(stats.utilization(r));
        }
        os << "}}";
        // v2 "breakdown" block: stall causes, energy split, per-opcode
        // attribution (opcodes with zero issues are omitted).
        os << ",\"breakdown\":{\"stalls\":{"
           << "\"hbm_bound\":" << num(stats.stalls.hbmBound)
           << ",\"dependency\":" << num(stats.stalls.dependency)
           << ",\"pipeline_fill\":" << num(stats.stalls.pipelineFill)
           << ",\"spad_spill_cycles\":" << num(stats.stalls.spadSpillCycles)
           << ",\"spad_writeback_bytes\":"
           << num(stats.stalls.spadWritebackBytes)
           << ",\"spad_evictions\":" << stats.stalls.spadEvictions << "}"
           << ",\"energy\":{"
           << "\"static_j\":" << num(energyStaticJ)
           << ",\"hbm_j\":" << num(energyHbmJ)
           << ",\"dynamic_j\":" << num(energyDynamicJ()) << "}"
           << ",\"per_op\":{";
        bool first = true;
        for (int i = 0; i < isa::kNumHwOps; ++i) {
            const OpStats &o = stats.opStats[i];
            if (o.count == 0)
                continue;
            const auto op = static_cast<isa::HwOp>(i);
            if (!first)
                os << ",";
            first = false;
            os << jsonStr(isa::opName(op)) << ":{"
               << "\"count\":" << o.count
               << ",\"cycles\":" << num(o.cycles)
               << ",\"compute_cycles\":" << num(o.computeCycles)
               << ",\"stall_cycles\":" << num(o.stallCycles)
               << ",\"fill_cycles\":" << num(o.fillCycles)
               << ",\"hbm_bytes\":" << num(o.hbmBytes)
               << ",\"energy_j\":" << num(opEnergyJ(op)) << "}";
        }
        os << "}}";
    }
    os << "}";
    return os.str();
}

std::string
RunResult::csvHeader()
{
    std::string h = "label,machine,workload,seconds,energy_j,power_w,"
                    "area_mm2,edp,edap,host_seconds,total_cycles,"
                    "inst_count,hbm_bytes,spad_hit_bytes,hbm_utilization,"
                    "pe_utilization";
    for (int i = 0; i < isa::kNumResources; ++i) {
        h += ",util_";
        h += isa::resourceName(static_cast<isa::Resource>(i));
    }
    // v2 columns, appended after every v1 column.
    h += ",stall_hbm_bound,stall_dependency,stall_pipeline_fill,"
         "spad_spill_cycles,spad_writeback_bytes,spad_evictions";
    for (int i = 0; i < isa::kNumHwOps; ++i) {
        h += ",cycles_";
        h += isa::opName(static_cast<isa::HwOp>(i));
    }
    return h;
}

std::string
RunResult::toCsvRow() const
{
    std::ostringstream os;
    os << csvStr(label) << "," << csvStr(machine) << ","
       << csvStr(workload) << "," << num(seconds) << "," << num(energyJ)
       << "," << num(powerW) << "," << num(areaMm2) << "," << num(edp())
       << "," << num(edap()) << "," << num(hostSeconds);
    if (verbosity == StatsVerbosity::Full) {
        os << "," << num(stats.totalCycles) << "," << stats.instCount
           << "," << num(stats.hbmBytes) << "," << num(stats.spadHitBytes)
           << "," << num(stats.hbmUtilization()) << ","
           << num(stats.peUtilization());
        for (int i = 0; i < isa::kNumResources; ++i)
            os << ","
               << num(stats.utilization(static_cast<isa::Resource>(i)));
        os << "," << num(stats.stalls.hbmBound) << ","
           << num(stats.stalls.dependency) << ","
           << num(stats.stalls.pipelineFill) << ","
           << num(stats.stalls.spadSpillCycles) << ","
           << num(stats.stalls.spadWritebackBytes) << ","
           << stats.stalls.spadEvictions;
        for (int i = 0; i < isa::kNumHwOps; ++i)
            os << "," << num(stats.opStats[i].cycles);
    } else {
        for (int i = 0; i < 6 + isa::kNumResources + 6 + isa::kNumHwOps;
             ++i)
            os << ",";
    }
    return os.str();
}

} // namespace sim
} // namespace ufc
