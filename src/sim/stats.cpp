/**
 * @file
 * Structured RunResult export (JSON / CSV).
 *
 * Numbers are formatted with "%.17g" so that a serialized result parses
 * back to the exact same double — the runner's determinism guarantee
 * ("parallel sweep == serial sweep") extends to the report files.
 */

#include "sim/stats.h"

#include <cstdio>
#include <sstream>

namespace ufc {
namespace sim {

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Minimal JSON string escaping (labels/names are plain ASCII here). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

/** CSV field quoting per RFC 4180 (only when needed). */
std::string
csvStr(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

} // namespace

std::string
RunResult::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":" << jsonStr(kRunResultSchema)
       << ",\"label\":" << jsonStr(label)
       << ",\"machine\":" << jsonStr(machine)
       << ",\"workload\":" << jsonStr(workload)
       << ",\"seconds\":" << num(seconds)
       << ",\"energy_j\":" << num(energyJ)
       << ",\"power_w\":" << num(powerW)
       << ",\"area_mm2\":" << num(areaMm2)
       << ",\"edp\":" << num(edp())
       << ",\"edap\":" << num(edap())
       << ",\"host_seconds\":" << num(hostSeconds);
    if (verbosity == StatsVerbosity::Full) {
        os << ",\"stats\":{"
           << "\"total_cycles\":" << num(stats.totalCycles)
           << ",\"inst_count\":" << stats.instCount
           << ",\"hbm_bytes\":" << num(stats.hbmBytes)
           << ",\"spad_hit_bytes\":" << num(stats.spadHitBytes)
           << ",\"hbm_utilization\":" << num(stats.hbmUtilization())
           << ",\"pe_utilization\":" << num(stats.peUtilization())
           << ",\"utilization\":{";
        for (int i = 0; i < isa::kNumResources; ++i) {
            const auto r = static_cast<isa::Resource>(i);
            if (i)
                os << ",";
            os << jsonStr(isa::resourceName(r)) << ":"
               << num(stats.utilization(r));
        }
        os << "}}";
    }
    os << "}";
    return os.str();
}

std::string
RunResult::csvHeader()
{
    std::string h = "label,machine,workload,seconds,energy_j,power_w,"
                    "area_mm2,edp,edap,host_seconds,total_cycles,"
                    "inst_count,hbm_bytes,spad_hit_bytes,hbm_utilization,"
                    "pe_utilization";
    for (int i = 0; i < isa::kNumResources; ++i) {
        h += ",util_";
        h += isa::resourceName(static_cast<isa::Resource>(i));
    }
    return h;
}

std::string
RunResult::toCsvRow() const
{
    std::ostringstream os;
    os << csvStr(label) << "," << csvStr(machine) << ","
       << csvStr(workload) << "," << num(seconds) << "," << num(energyJ)
       << "," << num(powerW) << "," << num(areaMm2) << "," << num(edp())
       << "," << num(edap()) << "," << num(hostSeconds);
    if (verbosity == StatsVerbosity::Full) {
        os << "," << num(stats.totalCycles) << "," << stats.instCount
           << "," << num(stats.hbmBytes) << "," << num(stats.spadHitBytes)
           << "," << num(stats.hbmUtilization()) << ","
           << num(stats.peUtilization());
        for (int i = 0; i < isa::kNumResources; ++i)
            os << ","
               << num(stats.utilization(static_cast<isa::Resource>(i)));
    } else {
        for (int i = 0; i < 6 + isa::kNumResources; ++i)
            os << ",";
    }
    return os.str();
}

} // namespace sim
} // namespace ufc
