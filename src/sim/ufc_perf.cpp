/**
 * @file
 * UFC performance model implementation.
 */

#include "sim/ufc_perf.h"

#include <algorithm>
#include <cmath>

namespace ufc {
namespace sim {

using isa::HwInst;
using isa::HwOp;
using isa::Resource;

double
UfcPerf::cgSplitPenalty() const
{
    // A single CG network spans all PEs.  Splitting it into G independent
    // networks shrinks wire spans but large transforms must cross network
    // boundaries through the channel crossbar, costing extra passes
    // (observed in the paper's Figure 13 DSE: one large network wins).
    if (cfg_.cgNetworks <= 1)
        return 1.0;
    return 1.0 + 0.35 * std::log2(static_cast<double>(cfg_.cgNetworks));
}

double
UfcPerf::computeCycles(const HwInst &inst) const
{
    const double bf = cfg_.totalButterflies();
    const double lanes = cfg_.totalLanes();
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto: {
        // Constant-geometry NTT: log(M) stages, each stage streams the
        // whole vector through the butterfly lanes and shuffle network.
        const int stages = std::max<u32>(1, inst.logDegree);
        const double wordsPerStage =
            static_cast<double>(inst.words) / 2.0;
        const double cyclesPerStage =
            std::max(1.0, wordsPerStage / bf);
        return stages * cyclesPerStage * cgSplitPenalty();
      }
      case HwOp::Ewmm:
      case HwOp::Ewma:
      case HwOp::EwScale:
      case HwOp::Decomp:
      case HwOp::MonomialMul:
      case HwOp::BconvMac:
      case HwOp::KeyGenOtf:
        return std::max(1.0, static_cast<double>(inst.work) / lanes);
      case HwOp::Extract:
      case HwOp::Reduce:
        // Near-memory LWEU processes one word per channel per cycle.
        return std::max(1.0, static_cast<double>(inst.work) /
                                 cfg_.crossbarPorts);
      case HwOp::Shuffle:
        return std::max(1.0, static_cast<double>(inst.words) /
                                 (cfg_.globalNocWordsPerCycle / 4.0));
    }
    return 1.0;
}

Resource
UfcPerf::resourceFor(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return Resource::Butterfly;
      case HwOp::Extract:
      case HwOp::Reduce:
        return Resource::Lweu;
      case HwOp::Shuffle:
        return Resource::Noc;
      default:
        return Resource::VectorAlu;
    }
}

double
UfcPerf::laneFraction(const HwInst &inst) const
{
    const double cycles = computeCycles(inst);
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto: {
        const int stages = std::max<u32>(1, inst.logDegree);
        const double butterflyOps =
            static_cast<double>(inst.words) / 2.0 * stages;
        return std::min(1.0, butterflyOps /
                                 (cycles * cfg_.totalButterflies()));
      }
      case HwOp::Extract:
      case HwOp::Reduce:
      case HwOp::Shuffle:
        return 1.0;
      default:
        return std::min(1.0, static_cast<double>(inst.work) /
                                 (cycles * cfg_.totalLanes()));
    }
}

double
UfcPerf::nocCycles(const HwInst &inst) const
{
    // Small rings (logN <= 14, i.e. logic-scheme data) run packed across
    // lanes, so their operands continuously cross the inter-channel
    // crossbar between the interleaved and continuous layouts
    // (Section V-C); full-size rings only exercise the CG network during
    // transform shuffles, and only a fraction of its phases at a time
    // (the x/y/r shuffles pipeline).
    const bool packedSmallRing = inst.logDegree > 0 && inst.logDegree <= 14;
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return (packedSmallRing ? 1.0 : 0.6) * computeCycles(inst);
      case HwOp::Shuffle:
        return computeCycles(inst);
      case HwOp::BconvMac:
        // Broadcasting base-conversion partial sums crosses PE rows.
        return (packedSmallRing ? 1.0 : 0.1) * computeCycles(inst);
      case HwOp::Ewmm:
      case HwOp::Ewma:
      case HwOp::EwScale:
      case HwOp::Decomp:
      case HwOp::MonomialMul:
        return packedSmallRing ? computeCycles(inst) : 0.0;
      default:
        return 0.0;
    }
}

double
UfcPerf::hbmBytesPerCycle() const
{
    return cfg_.hbmGBs / cfg_.freqGHz;
}

double
UfcPerf::scratchpadBytes() const
{
    return cfg_.scratchpadMb * 1024.0 * 1024.0;
}

} // namespace sim
} // namespace ufc
