/**
 * @file
 * Cost model implementation.
 */

#include "sim/cost_model.h"

#include <cmath>

namespace ufc {
namespace sim {

std::vector<AreaItem>
UfcCostModel::areaBreakdown() const
{
    std::vector<AreaItem> items;
    const double butterflies = cfg_.totalButterflies();
    const double lanes = cfg_.totalLanes();

    items.push_back({"Butterfly ALUs", butterflies * kButterflyMm2});
    items.push_back({"Mod mul/add lanes", lanes * kLaneMm2});
    items.push_back({"Register files",
                     cfg_.pes() * cfg_.registerFileKb * kRegFileMm2PerKb});
    items.push_back({"Scratchpad", cfg_.scratchpadMb * kSpadMm2PerMb});
    // CG network wiring scales with lanes and the span of each network;
    // splitting into G networks shortens spans slightly.
    const double span = std::log2(
        std::max(2.0, lanes / cfg_.cgNetworks));
    items.push_back({"Interconnect (CG + crossbar)",
                     lanes * kNocMm2PerLane * (span / 14.0)});
    items.push_back({"HBM PHYs", 2 * kHbmPhyMm2});
    items.push_back({"LWEU + dispatch", kLweuMm2});
    return items;
}

double
UfcCostModel::areaMm2() const
{
    double total = 0.0;
    for (const auto &item : areaBreakdown())
        total += item.mm2;
    return total;
}

double
UfcCostModel::averagePowerW(const RunStats &stats) const
{
    const double bfUtil = stats.utilization(isa::Resource::Butterfly);
    const double aluUtil = stats.utilization(isa::Resource::VectorAlu);
    const double nocUtil = stats.utilization(isa::Resource::Noc);
    const double lweuUtil = stats.utilization(isa::Resource::Lweu);
    const double computeUtil = 0.5 * (bfUtil + aluUtil);

    double power = kStaticW;
    power += cfg_.totalButterflies() * kButterflyPw * bfUtil;
    power += cfg_.totalLanes() * kLanePw * aluUtil;
    power += kNocPw * nocUtil * (cfg_.totalLanes() / 16384.0);
    power += kLweuPw * lweuUtil;
    // Scratchpad banks activate with the datapath.
    power += cfg_.scratchpadMb * kSpadPwPerMb * (0.3 + 0.7 * computeUtil);
    // HBM energy folded into average power via traffic.
    if (stats.totalCycles > 0) {
        const double bytesPerSec = stats.hbmBytes /
                                   seconds(stats);
        power += bytesPerSec * kHbmPjPerByte * 1e-12;
    }
    return power;
}

double
UfcCostModel::seconds(const RunStats &stats) const
{
    return stats.totalCycles / (cfg_.freqGHz * 1e9);
}

double
UfcCostModel::energyJ(const RunStats &stats) const
{
    return averagePowerW(stats) * seconds(stats);
}

double
UfcCostModel::staticEnergyJ(const RunStats &stats) const
{
    return kStaticW * seconds(stats);
}

double
UfcCostModel::hbmEnergyJ(const RunStats &stats) const
{
    return stats.hbmBytes * kHbmPjPerByte * 1e-12;
}

double
BaselineCost::averagePowerW(const RunStats &stats) const
{
    const double bfUtil = stats.utilization(isa::Resource::Butterfly);
    const double aluUtil = stats.utilization(isa::Resource::VectorAlu);
    const double nocUtil = stats.utilization(isa::Resource::Noc);
    const double util =
        0.45 * bfUtil + 0.35 * aluUtil + 0.20 * nocUtil;

    double power = staticW + peakDynamicW * util;
    if (stats.totalCycles > 0) {
        const double bytesPerSec = stats.hbmBytes / seconds(stats);
        power += bytesPerSec * hbmPjPerByte * 1e-12;
    }
    return power;
}

double
BaselineCost::seconds(const RunStats &stats) const
{
    return stats.totalCycles / (freqGHz * 1e9);
}

double
BaselineCost::energyJ(const RunStats &stats) const
{
    return averagePowerW(stats) * seconds(stats);
}

double
BaselineCost::staticEnergyJ(const RunStats &stats) const
{
    return staticW * seconds(stats);
}

double
BaselineCost::hbmEnergyJ(const RunStats &stats) const
{
    return stats.hbmBytes * hbmPjPerByte * 1e-12;
}

} // namespace sim
} // namespace ufc
