/**
 * @file
 * The cycle-level execution engine shared by all accelerator models.
 *
 * The engine consumes a primitive instruction stream in order and models:
 *   - compute occupancy per resource (throughput supplied by the machine
 *     performance model),
 *   - an in-order memory engine with a bounded prefetch window, so compute
 *     and memory overlap but dependency stalls still surface (this is what
 *     keeps PE/HBM utilization below 100%, as in paper Figure 12),
 *   - an LRU scratchpad at operand-buffer granularity (capacity effects
 *     drive the scratchpad design-space exploration of Figures 13/14).
 *
 * Observability: every issue() attributes its wall-cycle delta to the
 * instruction's opcode (RunStats::opStats) and classifies compute-engine
 * waits by cause (RunStats::stalls); finish() defines totalCycles as the
 * fixed-order sum of the per-opcode cycles, so the attribution table sums
 * to the total *exactly*.  An optional Timeline records begin/end slices
 * without influencing the schedule.
 */

#ifndef UFC_SIM_ENGINE_H
#define UFC_SIM_ENGINE_H

#include <chrono>
#include <deque>
#include <list>
#include <unordered_map>

#include "isa/inst.h"
#include "sim/stats.h"

namespace ufc {
namespace sim {

class Timeline;

namespace detail {

/**
 * Shared watchdog/deadline trip points: the IR CycleEngine and the
 * bytecode engine (sim/bc_engine.h) both throw through these helpers,
 * so a trip mid-run yields a byte-identical TimeoutError message on
 * either execution path — the differential tests compare what() of the
 * deterministic maxCycles trip verbatim.
 */
[[noreturn]] void throwHostDeadline(u64 instCount, double simCycles);
[[noreturn]] void throwMaxCycles(double simCycles, u64 bound,
                                 u64 instCount);

/** Count one armed host-deadline poll (the clock syscall, not the cheap
 *  modulo skip) in the metrics registry.  Observation only. */
void countDeadlinePoll();

} // namespace detail

/**
 * Machine performance model: translates a primitive instruction into
 * per-resource occupancy.  Each accelerator (UFC, SHARP, Strix) implements
 * one of these.
 */
class MachinePerf
{
  public:
    virtual ~MachinePerf() = default;

    /** Cycles the instruction occupies its primary compute resource. */
    virtual double computeCycles(const isa::HwInst &inst) const = 0;
    /** Primary compute resource. */
    virtual isa::Resource resourceFor(const isa::HwInst &inst) const = 0;
    /** Fraction of the resource's lanes that are active [0, 1]. */
    virtual double laneFraction(const isa::HwInst &inst) const = 0;
    /** Additional NoC busy cycles caused by this instruction. */
    virtual double nocCycles(const isa::HwInst &inst) const = 0;
    /** Bytes the HBM can move per cycle. */
    virtual double hbmBytesPerCycle() const = 0;
    /** Scratchpad capacity in bytes. */
    virtual double scratchpadBytes() const = 0;
    /** Fixed pipeline fill/drain overhead charged per instruction; the
     *  datapath is occupied but does no useful work (lowers utilization
     *  of fine-grained instruction streams, e.g. TFHE blind rotation). */
    virtual double pipelineFillCycles() const { return 24.0; }
};

/** LRU scratchpad at operand-buffer granularity. */
class SpadModel
{
  public:
    explicit SpadModel(double capacityBytes)
        : capacity_(capacityBytes)
    {}

    /**
     * Touch a buffer; returns the bytes that must be fetched from HBM
     * (0 on a hit).  Write buffers are installed dirty; evicting a dirty
     * buffer adds write-back traffic via `writebackBytes`.
     */
    double access(const isa::BufferRef &ref, double &writebackBytes);

    /** Buffers evicted for capacity since the last reset(). */
    u64 evictions() const { return evictions_; }

    void
    reset()
    {
        entries_.clear();
        lru_.clear();
        used_ = 0.0;
        evictions_ = 0;
    }

  private:
    struct Entry
    {
        double bytes = 0.0;
        bool dirty = false;
        std::list<u64>::iterator lruIt;
    };

    double capacity_;
    double used_ = 0.0;
    u64 evictions_ = 0;
    std::unordered_map<u64, Entry> entries_;
    std::list<u64> lru_; ///< front = most recent
};

/**
 * In-order two-engine (compute + memory) cycle model.
 *
 * Thread safety: a CycleEngine owns all of its mutable state and only
 * reads the (const) MachinePerf it was given, so distinct engines may run
 * on distinct threads concurrently; one engine must not be shared.  An
 * attached Timeline is written by the engine and shares its thread
 * affinity.
 */
class CycleEngine : public isa::InstSink
{
  public:
    /// Default bound on how far the memory engine runs ahead of compute;
    /// RunOptions::prefetchWindow overrides it per run (0 = no lookahead;
    /// the -1 RunOptions sentinel selects this default before the engine
    /// is constructed).
    static constexpr int kDefaultPrefetchWindow = 16;

    CycleEngine(const MachinePerf *perf,
                int prefetchWindow = kDefaultPrefetchWindow);

    /** Attach (or detach with nullptr) an event-stream recorder.  The
     *  recorder only observes; the schedule and RunStats are identical
     *  with or without it. */
    void setTimeline(Timeline *timeline) { timeline_ = timeline; }

    /** Simulated-cycle watchdog: issue() throws ufc::TimeoutError (a
     *  SimError) once the compute clock passes `cycles`.  0 disables
     *  (the default).  Deterministic: the trip point depends only on
     *  the instruction stream. */
    void setMaxCycles(u64 cycles) { maxCycles_ = cycles; }

    /** Cooperative host-side deadline: issue() polls the wall clock
     *  every kDeadlinePollPeriod instructions (a cheap poll point) and
     *  throws ufc::TimeoutError once it passes.  The default epoch
     *  time point disarms the check. */
    void
    setHostDeadline(std::chrono::steady_clock::time_point deadline)
    {
        hostDeadline_ = deadline;
    }

    /// Instructions between host-deadline wall-clock polls.
    static constexpr u64 kDeadlinePollPeriod = 1024;

    void issue(const isa::HwInst &inst) override;

    /** Phase markers forwarded by the compiler; recorded to the attached
     *  Timeline (no-ops otherwise). */
    void beginPhase(const char *name) override;
    void endPhase() override;

    /** Finish outstanding work and return the accumulated statistics. */
    RunStats finish();

    /** Reset for a fresh run (keeps the machine model and timeline). */
    void reset();

  private:
    const MachinePerf *perf_;
    SpadModel spad_;
    int window_;
    Timeline *timeline_ = nullptr;
    u64 maxCycles_ = 0; ///< 0 = unlimited
    std::chrono::steady_clock::time_point hostDeadline_{};

    double computeClock_ = 0.0;
    double memClock_ = 0.0;
    std::deque<double> recentComputeDone_;
    RunStats stats_;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_ENGINE_H
