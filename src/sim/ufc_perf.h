/**
 * @file
 * UFC machine performance model: maps primitive instructions to resource
 * occupancy for the flattened PE-array architecture of Section IV-B.
 */

#ifndef UFC_SIM_UFC_PERF_H
#define UFC_SIM_UFC_PERF_H

#include "sim/config.h"
#include "sim/engine.h"

namespace ufc {
namespace sim {

/** Performance model of the UFC PE array, CG network, LWEU and HBM. */
class UfcPerf : public MachinePerf
{
  public:
    explicit UfcPerf(const UfcConfig &cfg) : cfg_(cfg) {}

    const UfcConfig &config() const { return cfg_; }

    double computeCycles(const isa::HwInst &inst) const override;
    isa::Resource resourceFor(const isa::HwInst &inst) const override;
    double laneFraction(const isa::HwInst &inst) const override;
    double nocCycles(const isa::HwInst &inst) const override;
    double hbmBytesPerCycle() const override;
    double scratchpadBytes() const override;
    /** Flattened (non-pipelined) function units refill quickly. */
    double pipelineFillCycles() const override { return 10.0; }

  private:
    /** Penalty multiplier for splitting the CG network (Figure 13). */
    double cgSplitPenalty() const;

    UfcConfig cfg_;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_UFC_PERF_H
