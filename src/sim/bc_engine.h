/**
 * @file
 * Bytecode executor: runs a compiled compiler::Program through the exact
 * cycle model of sim/engine.h as a tight dispatch loop.
 *
 * The executor replicates CycleEngine::issue() arithmetic operation for
 * operation — same expressions, same evaluation order, same divisions —
 * over the pre-computed BcInst terms, so its RunStats (and an attached
 * Timeline, and a TimeoutError trip) are bit-identical to the IR
 * interpreter's.  What changes is the cost per instruction:
 *   - no virtual cost-model calls (terms are baked into the BcInst),
 *   - the scratchpad is a dense slot array with an intrusive LRU list
 *     instead of unordered_map + std::list,
 *   - the prefetch window is a flat ring buffer instead of a deque,
 *   - fused runs (BcInst::runLen > 1) iterate Stream instructions
 *     without re-dispatching on kind or phase events.
 *
 * Thread safety: like CycleEngine — one engine per run, engines on
 * distinct threads may share one (immutable) Program.
 */

#ifndef UFC_SIM_BC_ENGINE_H
#define UFC_SIM_BC_ENGINE_H

#include <chrono>
#include <memory>
#include <vector>

#include "compiler/bytecode.h"
#include "sim/engine.h"
#include "sim/phase_cache.h"
#include "sim/stats.h"

namespace ufc {
namespace sim {

class Timeline;

class BytecodeEngine
{
  public:
    /** `program` must outlive the engine and must be a single-chip
     *  Program (composed Programs are decomposed by ComposedModel). */
    BytecodeEngine(const compiler::Program *program, int prefetchWindow);

    /** Same observation-only contract as CycleEngine::setTimeline. */
    void setTimeline(Timeline *timeline) { timeline_ = timeline; }
    /** Same semantics (and the same TimeoutError diagnostics) as
     *  CycleEngine::setMaxCycles. */
    void setMaxCycles(u64 cycles) { maxCycles_ = cycles; }
    /** Same poll cadence (CycleEngine::kDeadlinePollPeriod) and the same
     *  TimeoutError diagnostics as CycleEngine::setHostDeadline. */
    void
    setHostDeadline(std::chrono::steady_clock::time_point deadline)
    {
        hostDeadline_ = deadline;
    }

    /**
     * Attach a phase-result cache (caller-owned, may be shared across
     * engines/threads; see sim/phase_cache.h).  The cache only
     * activates for runs without a timeline and without a host
     * deadline: a timeline needs every per-instruction slice replayed,
     * and a wall-clock deadline must keep observing real time inside
     * skipped segments.  Cached and uncached runs are bit-identical on
     * every observable (stats, thrown errors); segments that throw are
     * never cached, so errors re-derive deterministically.
     */
    void setPhaseCache(PhaseCache *cache) { cache_ = cache; }

    /** Execute the whole Program and return the finished statistics
     *  (totalCycles defined as the per-opcode sum, exactly as
     *  CycleEngine::finish()). */
    RunStats run();

    /** Phase-cache lookups resolved by the last run(): hits and misses
     *  (both 0 when the cache was inactive).  Host-side observability
     *  only — the outcome depends on what concurrent runs populated, so
     *  these never feed a simulated observable. */
    u64 runCacheHits() const { return runCacheHits_; }
    u64 runCacheMisses() const { return runCacheMisses_; }

  private:
    /// Dense-slot scratchpad entry; prev/next form an intrusive LRU
    /// list over resident slots (head = most recent, tail = eviction
    /// candidate), replicating SpadModel's std::list semantics.
    struct Slot
    {
        double bytes = 0.0;
        bool dirty = false;
        bool resident = false;
        u32 prev = kNil;
        u32 next = kNil;
    };

    static constexpr u32 kNil = 0xffffffffu;

    template <bool WithTimeline> void exec();
    template <bool WithTimeline> void step(const compiler::BcInst &inst);
    void applyPhaseEvent(const compiler::PhaseEvent &ev);

    double spadAccess(const compiler::BcBuf &buf, double &writebackBytes);
    void lruUnlink(u32 slot);
    void lruPushFront(u32 slot);

    // Phase-cache plumbing (sim/phase_cache.h): the key binds the
    // segment's content digest to every piece of engine state the
    // segment's execution can observe; snapshot/restore move exactly
    // that state.  The digest comes from segHashes_ (hashed once per
    // run(), and only when the cache is armed, so uncached runs never
    // pay for hashing).
    u64 entryKey(u64 segContentHash) const;
    std::shared_ptr<const PhaseExitState> snapshotState() const;
    void restoreState(const PhaseExitState &s);

    const compiler::Program *program_;
    int window_;
    Timeline *timeline_ = nullptr;
    u64 maxCycles_ = 0;
    std::chrono::steady_clock::time_point hostDeadline_{};
    PhaseCache *cache_ = nullptr;
    bool cacheActive_ = false; // derived per run() from the gates above
    // Per-run content digests, segHashes_[s] for program_->segments[s];
    // filled by run() iff cacheActive_ (lazy: see PhaseSegment docs).
    std::vector<u64> segHashes_;

    double computeClock_ = 0.0;
    double memClock_ = 0.0;

    // Prefetch-window ring buffer mirroring CycleEngine's deque: the
    // deque only ever reads the element `window_` from the back and
    // trims the front beyond 4 * window_, so a fixed ring of that
    // capacity holds every value that can still be observed.
    std::vector<double> ring_;
    size_t ringStart_ = 0;
    size_t ringSize_ = 0;

    // Scratchpad state.
    std::vector<Slot> slots_;
    u32 lruHead_ = kNil;
    u32 lruTail_ = kNil;
    double spadUsed_ = 0.0;
    u64 spadEvictions_ = 0;

    // Last-run phase-cache lookup outcomes (see runCacheHits()).
    u64 runCacheHits_ = 0;
    u64 runCacheMisses_ = 0;

    RunStats stats_;
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_BC_ENGINE_H
