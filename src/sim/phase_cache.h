/**
 * @file
 * Phase-level result memoization for the bytecode engine.
 *
 * FHE workloads repeat phases almost verbatim — bootstrap inner loops,
 * key-switch digit ladders, blind-rotate iterations — and a sweep
 * re-executes whole content-identical programs (the paper batch runs the
 * same suites on several figures).  The engine's state at any
 * instruction boundary is small and fully enumerable: two clocks, the
 * prefetch ring, the resident scratchpad set in LRU order, and the
 * accumulated RunStats.  So a phase segment (compiler::PhaseSegment)
 * whose content digest AND entry state match an earlier execution must
 * produce the bit-identical exit state — the engine is deterministic —
 * and the cache simply stores that exit state and restores it on a hit
 * instead of re-stepping the segment.
 *
 * Why absolute exit snapshots and not deltas: the engine accumulates
 * doubles, and floating-point addition is not associative — applying a
 * delta to a different base would not be bit-identical.  Keying on the
 * full entry state sidesteps that: a hit replays onto the *same* base by
 * construction, so restoring the stored absolute values is exact.
 *
 * Thread safety: find/insert are mutex-guarded and the stored states are
 * immutable (shared_ptr<const>), so one cache may be shared by every
 * engine in a parallel batch.  Two threads racing on the same key both
 * miss and compute identical snapshots; insert keeps the first.
 */

#ifndef UFC_SIM_PHASE_CACHE_H
#define UFC_SIM_PHASE_CACHE_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/stats.h"

namespace ufc {
namespace sim {

/**
 * Everything the bytecode engine's observable behaviour depends on at an
 * instruction boundary — the exact fields entryKey() hashes, stored
 * absolutely (see file header for why not deltas).
 */
struct PhaseExitState
{
    double computeClock = 0.0;
    double memClock = 0.0;
    /// Prefetch-ring contents in logical order (oldest first); only the
    /// last `window` completion times and the count are observable, so
    /// restoring with ringStart = 0 is exact.
    std::vector<double> ring;

    struct SpadEntry
    {
        u32 slot = 0;
        double bytes = 0.0;
        bool dirty = false;
    };
    /// Resident scratchpad slots in LRU order (most recent first).
    /// Non-resident slots carry no observable state: the engine
    /// overwrites their bytes on re-entry and never walks them.
    std::vector<SpadEntry> lru;
    double spadUsed = 0.0;
    u64 spadEvictions = 0;

    /// Full accumulated statistics (totalCycles still 0 — it is defined
    /// at end of run as the per-opcode sum).
    RunStats stats;
};

/** Shared, thread-safe key -> exit-state map with hit/miss counters. */
class PhaseCache
{
  public:
    using ExitPtr = std::shared_ptr<const PhaseExitState>;

    /** Look up a key; counts a hit or a miss.  Null on miss. */
    ExitPtr find(u64 key);
    /** Store an exit state; the first insert for a key wins (racing
     *  inserters computed bit-identical states anyway). */
    void insert(u64 key, ExitPtr state);

    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    u64
    misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    u64 lookups() const { return hits() + misses(); }
    std::size_t entries() const;

  private:
    mutable std::mutex mu_;
    std::unordered_map<u64, ExitPtr> map_;
    std::atomic<u64> hits_{0};
    std::atomic<u64> misses_{0};
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_PHASE_CACHE_H
