/**
 * @file
 * UFC architecture configuration (paper Table II) and DSE knobs.
 */

#ifndef UFC_SIM_CONFIG_H
#define UFC_SIM_CONFIG_H

#include <string>

#include "common/types.h"

namespace ufc {
namespace sim {

/**
 * Architectural parameters of one UFC instance.  Defaults reproduce
 * Table II; the design-space-exploration benchmarks vary lanesPerPe,
 * scratchpadMb and cgNetworks (Figures 13/14).
 */
struct UfcConfig
{
    std::string name = "UFC";

    // Compute cluster.
    int peRows = 8;
    int peCols = 8;
    int butterfliesPerPe = 128; ///< butterfly ALUs per PE
    int lanesPerPe = 256;       ///< modular mul/add lanes per PE

    // Memory hierarchy.
    double scratchpadMb = 256.0; ///< total on-chip scratchpad
    double registerFileKb = 288.0; ///< per-PE register file (72x4x1KB)
    double hbmGBs = 1024.0;      ///< off-chip bandwidth (1 TB/s)
    double lweSpadKb = 32.0;

    // Interconnect.
    int cgNetworks = 1;          ///< number of separate CG-NTT networks
    int globalNocWordsPerCycle = 32768; ///< 2048 x 4B x 16
    int crossbarPorts = 32;      ///< HBM-channel crossbar (32x32x2)

    // Clocking and word size.
    double freqGHz = 1.0;
    int wordBits = 32;

    // Optimizations (Section IV-B5 / V).
    bool onTheFlyKeyGen = true;  ///< halve key traffic, add keygen work
    bool smallPolyPacking = true;///< Section V-A packing

    int pes() const { return peRows * peCols; }
    int totalButterflies() const { return pes() * butterfliesPerPe; }
    int totalLanes() const { return pes() * lanesPerPe; }

    /** Machine words needed per coefficient of a limbBits-wide limb. */
    int
    wordsPerCoeff(int limbBits) const
    {
        return (limbBits + wordBits - 1) / wordBits;
    }

    /** Bytes per coefficient in memory. */
    double
    bytesPerCoeff(int limbBits) const
    {
        return wordsPerCoeff(limbBits) * (wordBits / 8.0);
    }

    /** Table II configuration. */
    static UfcConfig tableII() { return UfcConfig{}; }
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_CONFIG_H
