/**
 * @file
 * Simulation result accounting: cycles, per-resource busy time, memory
 * traffic, and the derived delay/energy/EDP/EDAP metrics the paper
 * reports — plus the structured export (JSON / CSV) used by the batch
 * experiment runner.
 *
 * ## RunResult schema (stable; bump kRunResultSchema when it changes)
 *
 * Scalar fields (CSV column order, JSON key in parentheses):
 *   label          (label)         run label assigned by the caller/runner
 *   machine        (machine)       accelerator model name
 *   workload       (workload)      trace name
 *   seconds        (seconds)       simulated execution time
 *   energyJ        (energy_j)      simulated energy
 *   powerW         (power_w)       average power over the run
 *   areaMm2        (area_mm2)      chip area of the model
 *   edp()          (edp)           energy-delay product
 *   edap()         (edap)          energy-delay-area product
 *   hostSeconds    (host_seconds)  wall-clock the host spent simulating
 * Raw counters (JSON under "stats", omitted at Verbosity::Compact):
 *   totalCycles    (total_cycles)
 *   instCount      (inst_count)
 *   hbmBytes       (hbm_bytes)
 *   spadHitBytes   (spad_hit_bytes)
 *   hbmUtilization()      (hbm_utilization)
 *   peUtilization()       (pe_utilization)
 *   utilization(r)        (utilization.<resource>) for every isa::Resource
 *
 * v2 additions, all under a new "breakdown" JSON key (and appended CSV
 * columns), with every v1 key unchanged:
 *   breakdown.stalls.*    stall-cause decomposition of totalCycles
 *   breakdown.energy.*    static / HBM / dynamic energy split
 *   breakdown.per_op.<mnemonic>.*   per-opcode attribution table
 * Invariants maintained by the cycle engine:
 *   totalCycles == sum over opcodes of opStats[i].cycles     (exactly)
 *   opStats[i].cycles == computeCycles + stallCycles + fillCycles (per op)
 *   stalls.hbmBound + stalls.dependency == sum of stallCycles
 *   stalls.pipelineFill == sum of fillCycles
 */

#ifndef UFC_SIM_STATS_H
#define UFC_SIM_STATS_H

#include <array>
#include <cassert>
#include <chrono>
#include <string>

#include "isa/inst.h"

namespace ufc {
namespace sim {

class Timeline;   // sim/timeline.h — optional structured event stream
class PhaseCache; // sim/phase_cache.h — shared phase-result memoization

/** Schema identifier embedded in every exported RunResult. */
inline constexpr const char *kRunResultSchema = "ufc.runresult/v2";

/** How much of a run's statistics to retain/export. */
enum class StatsVerbosity
{
    Compact, ///< headline metrics only (no per-resource breakdown)
    Full,    ///< everything, including raw counters and utilizations
};

/**
 * Which execution engine a run() call uses.  Both paths produce
 * bit-identical RunResults (a differential test gate enforces it); the
 * choice only affects host-side speed and is exposed so the differential
 * tests and `sweep_all --ir` can pin the legacy interpreter.
 */
enum class ExecMode
{
    /// Compile the trace to a bytecode Program once, then execute it on
    /// the tight-loop engine (sim/bc_engine.h).  The default.
    Bytecode,
    /// Legacy path: re-interpret the trace IR through compiler::Lowering
    /// feeding the CycleEngine directly.
    TraceIr,
};

/**
 * Per-run options accepted by every AcceleratorModel::run() overload.
 * Thread safety: a RunOptions value is read-only during a run, so one
 * instance may be shared across concurrent runs — unless `timeline` is
 * set, in which case the engine writes through it and the options must
 * not be shared between concurrent runs.
 */
struct RunOptions
{
    /// Execution engine selection (see ExecMode).  Applies to run();
    /// compile()/execute() are inherently bytecode.
    ExecMode execMode = ExecMode::Bytecode;
    /// Governs what toJson()/toCsvRow() emit for this run.
    StatsVerbosity verbosity = StatsVerbosity::Full;
    /// Prefetch-window override for the cycle engine's memory engine;
    /// -1 keeps the model's default (CycleEngine::kDefaultPrefetchWindow),
    /// 0 requests no memory lookahead (fetch starts only when the
    /// instruction reaches the head of the compute engine).
    int prefetchWindow = -1;
    /// Free-form run label carried into RunResult::label; the experiment
    /// runner keys result lookup on it.
    std::string label;
    /// Simulated-cycle watchdog: the cycle engine throws SimError
    /// (TimeoutError) once its clock passes this bound.  0 = unlimited
    /// (the default).  Deterministic — the same trace trips at the same
    /// instruction on every run and thread count.  On the composed
    /// machine the bound applies to each chip's engine independently.
    u64 maxCycles = 0;
    /// Host-side cooperative deadline: the engine polls the wall clock
    /// at cheap intervals and throws TimeoutError once it passes.  The
    /// default (epoch) time point disarms it.  Filled by the experiment
    /// runner from RunnerConfig::jobTimeoutSeconds; unlike maxCycles it
    /// is inherently nondeterministic, so prefer maxCycles in tests.
    std::chrono::steady_clock::time_point hostDeadline{};
    /// Optional caller-owned event-stream recorder.  When set, the cycle
    /// engine records begin/end slices per instruction and per resource
    /// lane plus phase regions into it (cleared first).  Recording never
    /// affects the schedule: results are bit-identical with or without
    /// it.  ComposedModel ignores it for its sub-runs.
    Timeline *timeline = nullptr;
    /// Opt-in static-analysis pre-flight: when true, the experiment
    /// runner lints each job's trace (analysis::Analyzer trace-level
    /// passes) before simulating and fails the job with a TraceError
    /// carrying the first diagnostic if any Error-severity finding
    /// exists.  Per-job isolation applies: other jobs are unaffected.
    bool lintTraces = false;
    /// Opt-in dataflow pre-flight: like lintTraces but running the full
    /// abstract-interpretation layer (analysis::Analyzer::
    /// analyzeDataflow over the trace AND the compiled Program's df-*
    /// program rules).  Bytecode jobs reuse the batch's cached Program
    /// for the program-level rules, so the pre-flight adds no second
    /// lowering.  Never changes a passing run's results.
    bool dataflowLint = false;
    /// Opt-in static cost-bound gate: the experiment runner computes
    /// analysis::analyzeCostBounds on the compiled Program before
    /// executing and fails the job with SimError unless
    /// lower <= dynamic <= upper holds for both total cycles and HBM
    /// bytes afterwards.  Bytecode mode only (validateRunOptions
    /// rejects TraceIr: there is no Program to bound).  The check is
    /// host-side; results of passing runs are bit-identical.
    bool boundsCheck = false;
    /// Optional caller-owned phase-result cache (sim/phase_cache.h),
    /// honoured by the bytecode engine only.  Thread-safe: one cache may
    /// be shared across concurrent runs.  Results are bit-identical with
    /// or without it; timeline or host-deadline runs bypass it (see
    /// BytecodeEngine::setPhaseCache).
    PhaseCache *phaseCache = nullptr;
};

/**
 * Validate a RunOptions value before a run; throws ufc::ConfigError on
 * inconsistency (currently: prefetchWindow below the -1 sentinel or
 * absurdly large).  Every AcceleratorModel::run() calls this first, so
 * a bad per-job configuration surfaces as a contained, typed failure
 * rather than undefined engine behavior.
 */
void validateRunOptions(const RunOptions &opts);

/** Per-opcode attribution row (one per isa::HwOp). */
struct OpStats
{
    u64 count = 0;              ///< instructions issued with this opcode
    double cycles = 0.0;        ///< attributed wall cycles (see invariant)
    double computeCycles = 0.0; ///< occupancy of the compute engine
    double stallCycles = 0.0;   ///< cycles the compute engine waited
    double fillCycles = 0.0;    ///< pipeline fill/drain overhead
    double hbmBytes = 0.0;      ///< off-chip traffic caused by the opcode

    void
    merge(const OpStats &other)
    {
        count += other.count;
        cycles += other.cycles;
        computeCycles += other.computeCycles;
        stallCycles += other.stallCycles;
        fillCycles += other.fillCycles;
        hbmBytes += other.hbmBytes;
    }
};

/** Stall-cause decomposition of the run's total cycles. */
struct StallStats
{
    /// Compute-engine wait cycles covered by active HBM transfer time
    /// (the memory interface was the bottleneck).
    double hbmBound = 0.0;
    /// Remaining wait cycles: the fetch finished earlier but could not
    /// start soon enough (prefetch-window / in-order dependency limit).
    double dependency = 0.0;
    /// Per-instruction pipeline fill/drain cycles.
    double pipelineFill = 0.0;
    /// HBM-interface cycles spent writing back dirty scratchpad victims
    /// (capacity spills).  A subset of the HBM occupancy, not an
    /// additional stall class.
    double spadSpillCycles = 0.0;
    double spadWritebackBytes = 0.0; ///< bytes written back on eviction
    u64 spadEvictions = 0;           ///< scratchpad lines evicted

    void
    merge(const StallStats &other)
    {
        hbmBound += other.hbmBound;
        dependency += other.dependency;
        pipelineFill += other.pipelineFill;
        spadSpillCycles += other.spadSpillCycles;
        spadWritebackBytes += other.spadWritebackBytes;
        spadEvictions += other.spadEvictions;
    }
};

/** Raw counters accumulated by the cycle engine. */
struct RunStats
{
    double totalCycles = 0.0;
    /// Busy-lane-weighted cycles per resource (busy * activeFraction).
    std::array<double, isa::kNumResources> busyCycles{};
    double hbmBytes = 0.0;      ///< total off-chip traffic
    double hbmBusyCycles = 0.0; ///< cycles the HBM interface was active
    double spadHitBytes = 0.0;  ///< operand bytes served on chip
    u64 instCount = 0;
    /// Per-opcode attribution table; sums to totalCycles exactly.
    std::array<OpStats, isa::kNumHwOps> opStats{};
    /// Stall-cause accounting.
    StallStats stalls;

    double
    utilization(isa::Resource r) const
    {
        const double b = busyCycles[static_cast<int>(r)];
        return totalCycles > 0 ? b / totalCycles : 0.0;
    }

    double
    hbmUtilization() const
    {
        return totalCycles > 0 ? hbmBusyCycles / totalCycles : 0.0;
    }

    /** Processing-element utilization: fraction of time the PE datapath
     *  (butterfly or vector lanes) is doing useful work.  The two unit
     *  classes serve different instructions and never overlap in the
     *  in-order model, so their busy times add and the ratio cannot
     *  exceed 1; it is exported unclamped so a modelling bug shows up in
     *  the data (and trips the assert in debug builds) instead of being
     *  silently truncated. */
    double
    peUtilization() const
    {
        if (totalCycles <= 0)
            return 0.0;
        const double bf =
            busyCycles[static_cast<int>(isa::Resource::Butterfly)];
        const double va =
            busyCycles[static_cast<int>(isa::Resource::VectorAlu)];
        const double u = (bf + va) / totalCycles;
        assert(u <= 1.0 + 1e-9 && "PE busy cycles exceed total cycles");
        return u;
    }

    void
    merge(const RunStats &other)
    {
        totalCycles += other.totalCycles;
        for (int i = 0; i < isa::kNumResources; ++i)
            busyCycles[i] += other.busyCycles[i];
        hbmBytes += other.hbmBytes;
        hbmBusyCycles += other.hbmBusyCycles;
        spadHitBytes += other.spadHitBytes;
        instCount += other.instCount;
        for (int i = 0; i < isa::kNumHwOps; ++i)
            opStats[i].merge(other.opStats[i]);
        stalls.merge(other.stalls);
    }
};

/** A finished run with physical units attached (schema above). */
struct RunResult
{
    std::string label;    ///< from RunOptions::label
    std::string machine;
    std::string workload;
    RunStats stats;
    double seconds = 0.0;
    double energyJ = 0.0;
    double areaMm2 = 0.0;
    double powerW = 0.0;
    /// Leakage/clock-tree component of energyJ (cost-model estimate).
    double energyStaticJ = 0.0;
    /// Off-chip (HBM interface) component of energyJ.
    double energyHbmJ = 0.0;
    /// Host wall-clock spent producing this result; filled by the
    /// experiment runner, never by the models (it is the one field that
    /// is not deterministic run-to-run).
    double hostSeconds = 0.0;
    /// Phase-cache lookups this run resolved as hits/misses (both 0 when
    /// no cache was attached).  Host-side observability only: the split
    /// depends on which concurrent run populated an entry first, so —
    /// like hostSeconds — these are never serialized by toJson() or
    /// toCsvRow() and never feed a simulated observable.
    u64 phaseCacheHits = 0;
    u64 phaseCacheMisses = 0;
    /// Captured from RunOptions at run time; governs export detail.
    StatsVerbosity verbosity = StatsVerbosity::Full;

    double edp() const { return energyJ * seconds; }
    double edap() const { return energyJ * seconds * areaMm2; }

    /** Dynamic (datapath) component of energyJ: whatever the static and
     *  HBM components leave over. */
    double
    energyDynamicJ() const
    {
        return energyJ - energyStaticJ - energyHbmJ;
    }

    /**
     * Energy attributed to one opcode: the dynamic component is split by
     * compute-cycle share, the HBM component by byte share, and the
     * static component by attributed-cycle share.  Sums to energyJ over
     * all opcodes (up to rounding) when the cost model filled the split.
     */
    double opEnergyJ(isa::HwOp op) const;

    /** One self-contained JSON object (schema documented above).
     *  Doubles are printed with round-trip precision so serialized
     *  results compare bit-identically across runs. */
    std::string toJson() const;

    /** One CSV data row matching csvHeader(); Compact verbosity leaves
     *  the counter columns empty. */
    std::string toCsvRow() const;

    /** Comma-separated column names for toCsvRow(). */
    static std::string csvHeader();
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_STATS_H
