/**
 * @file
 * Simulation result accounting: cycles, per-resource busy time, memory
 * traffic, and the derived delay/energy/EDP/EDAP metrics the paper
 * reports — plus the structured export (JSON / CSV) used by the batch
 * experiment runner.
 *
 * ## RunResult schema (stable; bump kRunResultSchema when it changes)
 *
 * Scalar fields (CSV column order, JSON key in parentheses):
 *   label          (label)         run label assigned by the caller/runner
 *   machine        (machine)       accelerator model name
 *   workload       (workload)      trace name
 *   seconds        (seconds)       simulated execution time
 *   energyJ        (energy_j)      simulated energy
 *   powerW         (power_w)       average power over the run
 *   areaMm2        (area_mm2)      chip area of the model
 *   edp()          (edp)           energy-delay product
 *   edap()         (edap)          energy-delay-area product
 *   hostSeconds    (host_seconds)  wall-clock the host spent simulating
 * Raw counters (JSON under "stats", omitted at Verbosity::Compact):
 *   totalCycles    (total_cycles)
 *   instCount      (inst_count)
 *   hbmBytes       (hbm_bytes)
 *   spadHitBytes   (spad_hit_bytes)
 *   hbmUtilization()      (hbm_utilization)
 *   peUtilization()       (pe_utilization)
 *   utilization(r)        (utilization.<resource>) for every isa::Resource
 */

#ifndef UFC_SIM_STATS_H
#define UFC_SIM_STATS_H

#include <algorithm>
#include <array>
#include <string>

#include "isa/inst.h"

namespace ufc {
namespace sim {

/** Schema identifier embedded in every exported RunResult. */
inline constexpr const char *kRunResultSchema = "ufc.runresult/v1";

/** How much of a run's statistics to retain/export. */
enum class StatsVerbosity
{
    Compact, ///< headline metrics only (no per-resource breakdown)
    Full,    ///< everything, including raw counters and utilizations
};

/**
 * Per-run options accepted by every AcceleratorModel::run() overload.
 * Thread safety: a RunOptions value is read-only during a run, so one
 * instance may be shared across concurrent runs.
 */
struct RunOptions
{
    /// Governs what toJson()/toCsvRow() emit for this run.
    StatsVerbosity verbosity = StatsVerbosity::Full;
    /// Prefetch-window override for the cycle engine's memory engine;
    /// 0 keeps the model's default (CycleEngine::kDefaultPrefetchWindow).
    int prefetchWindow = 0;
    /// Free-form run label carried into RunResult::label; the experiment
    /// runner keys result lookup on it.
    std::string label;
};

/** Raw counters accumulated by the cycle engine. */
struct RunStats
{
    double totalCycles = 0.0;
    /// Busy-lane-weighted cycles per resource (busy * activeFraction).
    std::array<double, isa::kNumResources> busyCycles{};
    double hbmBytes = 0.0;      ///< total off-chip traffic
    double hbmBusyCycles = 0.0; ///< cycles the HBM interface was active
    double spadHitBytes = 0.0;  ///< operand bytes served on chip
    u64 instCount = 0;

    double
    utilization(isa::Resource r) const
    {
        const double b = busyCycles[static_cast<int>(r)];
        return totalCycles > 0 ? b / totalCycles : 0.0;
    }

    double
    hbmUtilization() const
    {
        return totalCycles > 0 ? hbmBusyCycles / totalCycles : 0.0;
    }

    /** Processing-element utilization: fraction of time the PE datapath
     *  (butterfly or vector lanes) is doing useful work.  The two unit
     *  classes serve different instructions and never overlap in the
     *  in-order model, so their busy times add. */
    double
    peUtilization() const
    {
        if (totalCycles <= 0)
            return 0.0;
        const double bf =
            busyCycles[static_cast<int>(isa::Resource::Butterfly)];
        const double va =
            busyCycles[static_cast<int>(isa::Resource::VectorAlu)];
        return std::min(1.0, (bf + va) / totalCycles);
    }

    void
    merge(const RunStats &other)
    {
        totalCycles += other.totalCycles;
        for (int i = 0; i < isa::kNumResources; ++i)
            busyCycles[i] += other.busyCycles[i];
        hbmBytes += other.hbmBytes;
        hbmBusyCycles += other.hbmBusyCycles;
        spadHitBytes += other.spadHitBytes;
        instCount += other.instCount;
    }
};

/** A finished run with physical units attached (schema above). */
struct RunResult
{
    std::string label;    ///< from RunOptions::label
    std::string machine;
    std::string workload;
    RunStats stats;
    double seconds = 0.0;
    double energyJ = 0.0;
    double areaMm2 = 0.0;
    double powerW = 0.0;
    /// Host wall-clock spent producing this result; filled by the
    /// experiment runner, never by the models (it is the one field that
    /// is not deterministic run-to-run).
    double hostSeconds = 0.0;
    /// Captured from RunOptions at run time; governs export detail.
    StatsVerbosity verbosity = StatsVerbosity::Full;

    double edp() const { return energyJ * seconds; }
    double edap() const { return energyJ * seconds * areaMm2; }

    /** One self-contained JSON object (schema documented above).
     *  Doubles are printed with round-trip precision so serialized
     *  results compare bit-identically across runs. */
    std::string toJson() const;

    /** One CSV data row matching csvHeader(); Compact verbosity leaves
     *  the counter columns empty. */
    std::string toCsvRow() const;

    /** Comma-separated column names for toCsvRow(). */
    static std::string csvHeader();
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_STATS_H
