/**
 * @file
 * Simulation result accounting: cycles, per-resource busy time, memory
 * traffic, and the derived delay/energy/EDP/EDAP metrics the paper
 * reports.
 */

#ifndef UFC_SIM_STATS_H
#define UFC_SIM_STATS_H

#include <algorithm>
#include <array>
#include <string>

#include "isa/inst.h"

namespace ufc {
namespace sim {

/** Raw counters accumulated by the cycle engine. */
struct RunStats
{
    double totalCycles = 0.0;
    /// Busy-lane-weighted cycles per resource (busy * activeFraction).
    std::array<double, isa::kNumResources> busyCycles{};
    double hbmBytes = 0.0;      ///< total off-chip traffic
    double hbmBusyCycles = 0.0; ///< cycles the HBM interface was active
    double spadHitBytes = 0.0;  ///< operand bytes served on chip
    u64 instCount = 0;

    double
    utilization(isa::Resource r) const
    {
        const double b = busyCycles[static_cast<int>(r)];
        return totalCycles > 0 ? b / totalCycles : 0.0;
    }

    double
    hbmUtilization() const
    {
        return totalCycles > 0 ? hbmBusyCycles / totalCycles : 0.0;
    }

    /** Processing-element utilization: fraction of time the PE datapath
     *  (butterfly or vector lanes) is doing useful work.  The two unit
     *  classes serve different instructions and never overlap in the
     *  in-order model, so their busy times add. */
    double
    peUtilization() const
    {
        if (totalCycles <= 0)
            return 0.0;
        const double bf =
            busyCycles[static_cast<int>(isa::Resource::Butterfly)];
        const double va =
            busyCycles[static_cast<int>(isa::Resource::VectorAlu)];
        return std::min(1.0, (bf + va) / totalCycles);
    }

    void
    merge(const RunStats &other)
    {
        totalCycles += other.totalCycles;
        for (int i = 0; i < isa::kNumResources; ++i)
            busyCycles[i] += other.busyCycles[i];
        hbmBytes += other.hbmBytes;
        hbmBusyCycles += other.hbmBusyCycles;
        spadHitBytes += other.spadHitBytes;
        instCount += other.instCount;
    }
};

/** A finished run with physical units attached. */
struct RunResult
{
    std::string machine;
    std::string workload;
    RunStats stats;
    double seconds = 0.0;
    double energyJ = 0.0;
    double areaMm2 = 0.0;
    double powerW = 0.0;

    double edp() const { return energyJ * seconds; }
    double edap() const { return energyJ * seconds * areaMm2; }
};

} // namespace sim
} // namespace ufc

#endif // UFC_SIM_STATS_H
