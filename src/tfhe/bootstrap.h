/**
 * @file
 * Functional bootstrapping for the logic scheme (paper Section II-C2).
 *
 * The three-step flow — packing (modulus switch + test-vector setup),
 * accumulation (blind rotation with RGSW bootstrapping keys), and
 * extraction (sample extract + key switch back to the small key) — follows
 * the paper's breakdown in Figure 4.
 */

#ifndef UFC_TFHE_BOOTSTRAP_H
#define UFC_TFHE_BOOTSTRAP_H

#include <functional>
#include <memory>
#include <vector>

#include "poly/rns_poly.h"
#include "tfhe/rlwe.h"

namespace ufc {
namespace tfhe {

/** LWE-to-LWE key switching key (paper Section II-C3). */
struct KeySwitchKey
{
    /** ksk[i][j] encrypts s'_i * g_j under the target key. */
    std::vector<std::vector<LweCiphertext>> ksk;
    std::unique_ptr<Gadget> gadget;
};

/** Everything needed to bootstrap: RGSW keys, key switch key, tables. */
class BootstrapContext
{
  public:
    /**
     * Generate bootstrapping material: RGSW encryptions of the small-key
     * bits under the ring key, and a key switching key from the extracted
     * ring key back to the small key.
     */
    BootstrapContext(const TfheParams &params, const LweSecretKey &lweKey,
                     const RlweSecretKey &ringKey, Rng &rng);

    const TfheParams &params() const { return params_; }
    const NttTable *ringTable() const { return ringTable_; }
    const Gadget &gadget() const { return *gadget_; }

    /**
     * Blind rotation: homomorphically computes testVector * X^(-phase')
     * where phase' is the mod-switched phase of `ct`.  Returns the RLWE
     * accumulator.
     */
    RlweCiphertext blindRotate(const LweCiphertext &ct,
                               const Poly &testVector) const;

    /** Key switch from the extracted (dimension N) key to the small key. */
    LweCiphertext keySwitch(const LweCiphertext &ct) const;

    /**
     * Programmable bootstrapping: evaluates lut (size t, message space
     * Z_t, inputs restricted to [0, t/2) — the padding-bit convention) on
     * the encrypted message and refreshes the noise.  When tOut is
     * nonzero the output is encoded in Z_tOut instead of Z_t (useful for
     * re-encoding before scheme switching or packing).
     */
    LweCiphertext programmableBootstrap(const LweCiphertext &ct,
                                        const std::vector<u64> &lut,
                                        u64 t, u64 tOut = 0) const;

    /**
     * Sign bootstrapping used by the boolean gates: returns an encryption
     * of +q/8 when the phase lies in [0, q/2), -q/8 otherwise.
     */
    LweCiphertext signBootstrap(const LweCiphertext &ct) const;

    /** Build a test vector for a lut over Z_t, outputs encoded in
     *  Z_tOut (tOut == 0 means tOut = t). */
    Poly makeTestVector(const std::vector<u64> &lut, u64 t,
                        u64 tOut = 0) const;

  private:
    TfheParams params_;
    const NttTable *ringTable_;
    std::unique_ptr<Gadget> gadget_;
    std::vector<RgswCiphertext> btk_; ///< one RGSW per small-key bit
    KeySwitchKey ksk_;
};

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_BOOTSTRAP_H
