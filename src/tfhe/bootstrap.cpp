/**
 * @file
 * Blind rotation, key switching and programmable bootstrapping.
 */

#include "tfhe/bootstrap.h"

#include "common/check.h"

namespace ufc {
namespace tfhe {

BootstrapContext::BootstrapContext(const TfheParams &params,
                                   const LweSecretKey &lweKey,
                                   const RlweSecretKey &ringKey, Rng &rng)
    : params_(params),
      ringTable_(ringKey.s.table()),
      gadget_(std::make_unique<Gadget>(params.q, params.gadgetLogBase,
                                       params.gadgetLevels))
{
    UFC_CHECK(ringTable_->modulus().value() == params.q &&
              ringTable_->degree() == params.ringDim,
              "ring key parameters mismatch");

    // Bootstrapping keys: RGSW(s_i) for every bit of the small key.
    btk_.reserve(params.lweDim);
    Poly bit(ringKey.s.table(), PolyForm::Coeff);
    for (u32 i = 0; i < params.lweDim; ++i) {
        bit[0] = lweKey.s[i];
        btk_.push_back(
            rgswEncrypt(bit, ringKey, *gadget_, params.rlweSigma, rng));
    }

    // Key switching key: encrypt each extracted-key coefficient times each
    // gadget element under the small key.
    ksk_.gadget = std::make_unique<Gadget>(params.q, params.ksLogBase,
                                           params.ksLevels);
    ksk_.ksk.resize(params.ringDim);
    for (u32 i = 0; i < params.ringDim; ++i) {
        ksk_.ksk[i].reserve(params.ksLevels);
        for (int j = 0; j < params.ksLevels; ++j) {
            const u64 m = mulMod(ringKey.s[i], ksk_.gadget->g(j), params.q);
            ksk_.ksk[i].push_back(lweEncrypt(m, lweKey, params, rng));
        }
    }
}

RlweCiphertext
BootstrapContext::blindRotate(const LweCiphertext &ct,
                              const Poly &testVector) const
{
    const u64 n2 = 2ULL * params_.ringDim;
    const LweCiphertext small = ct.modSwitch(n2);

    // acc = (0, tv * X^(-b~)); each iteration conditionally multiplies by
    // X^(a~_i) when s_i = 1 via CMux with the RGSW key bit.
    RlweCiphertext acc = RlweCiphertext::trivial(
        testVector.mulByMonomial(-static_cast<i64>(small.b)));
    for (u32 i = 0; i < params_.lweDim; ++i) {
        if (small.a[i] == 0)
            continue;
        RlweCiphertext rotated =
            acc.mulByMonomial(static_cast<i64>(small.a[i]));
        acc = cmux(btk_[i], acc, rotated, *gadget_);
    }
    return acc;
}

LweCiphertext
BootstrapContext::keySwitch(const LweCiphertext &ct) const
{
    UFC_CHECK(ct.dim() == params_.ringDim, "key switch input dimension");
    const u64 q = params_.q;
    const Gadget &g = *ksk_.gadget;

    LweCiphertext out = LweCiphertext::trivial(ct.b, params_.lweDim, q);
    std::vector<u64> digits(g.levels());
    for (u32 i = 0; i < params_.ringDim; ++i) {
        if (ct.a[i] == 0)
            continue;
        g.decompose(ct.a[i], digits.data());
        for (int j = 0; j < g.levels(); ++j) {
            if (digits[j] == 0)
                continue;
            // out -= d_{i,j} * ksk[i][j]
            LweCiphertext term = ksk_.ksk[i][j];
            term.scaleInPlace(digits[j]);
            out.subInPlace(term);
        }
    }
    return out;
}

Poly
BootstrapContext::makeTestVector(const std::vector<u64> &lut, u64 t,
                                 u64 tOut) const
{
    const u64 n = params_.ringDim;
    const u64 q = params_.q;
    if (tOut == 0)
        tOut = t;
    UFC_CHECK(lut.size() == t, "lut size must equal message modulus");
    Poly tv(ringTable_, PolyForm::Coeff);
    // Window j in [0, N) covers phases [j*q/(2N), (j+1)*q/(2N)); together
    // with the half-window input shift in programmableBootstrap this makes
    // floor indexing hit the intended message.
    for (u64 j = 0; j < n; ++j) {
        const u64 m = static_cast<u64>(
            (static_cast<u128>(j) * t) / (2 * n)) % t;
        tv[j] = lweEncode(lut[m], q, tOut);
    }
    return tv;
}

LweCiphertext
BootstrapContext::programmableBootstrap(const LweCiphertext &ct,
                                        const std::vector<u64> &lut,
                                        u64 t, u64 tOut) const
{
    // Half-window shift so rounding errors around each encoded message
    // stay inside its window (the padding-bit convention keeps messages
    // in [0, t/2) so the negacyclic wrap is never hit).
    LweCiphertext shifted = ct;
    shifted.addConstant(params_.q / (2 * t));

    const Poly tv = makeTestVector(lut, t, tOut);
    const RlweCiphertext acc = blindRotate(shifted, tv);
    const LweCiphertext extracted = sampleExtract(acc, 0);
    return keySwitch(extracted);
}

LweCiphertext
BootstrapContext::signBootstrap(const LweCiphertext &ct) const
{
    const u64 q = params_.q;
    // Constant test vector q/8: +q/8 for phases in [0, q/2), -q/8 below.
    Poly tv(ringTable_, PolyForm::Coeff);
    const u64 eighth = q / 8;
    for (u64 j = 0; j < params_.ringDim; ++j)
        tv[j] = eighth;
    const RlweCiphertext acc = blindRotate(ct, tv);
    const LweCiphertext extracted = sampleExtract(acc, 0);
    return keySwitch(extracted);
}

} // namespace tfhe
} // namespace ufc
