/**
 * @file
 * LWE ciphertext operations.
 */

#include "tfhe/lwe.h"

#include "common/check.h"

namespace ufc {
namespace tfhe {

LweSecretKey
LweSecretKey::generate(u32 dim, Rng &rng)
{
    LweSecretKey key;
    key.s.resize(dim);
    for (auto &bit : key.s)
        bit = rng.next() & 1;
    return key;
}

LweCiphertext
LweCiphertext::trivial(u64 m, u32 dim, u64 q)
{
    LweCiphertext ct;
    ct.a.assign(dim, 0);
    ct.b = m % q;
    ct.q = q;
    return ct;
}

void
LweCiphertext::addInPlace(const LweCiphertext &other)
{
    UFC_CHECK(q == other.q && a.size() == other.a.size(),
              "LWE parameter mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = addMod(a[i], other.a[i], q);
    b = addMod(b, other.b, q);
}

void
LweCiphertext::subInPlace(const LweCiphertext &other)
{
    UFC_CHECK(q == other.q && a.size() == other.a.size(),
              "LWE parameter mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = subMod(a[i], other.a[i], q);
    b = subMod(b, other.b, q);
}

void
LweCiphertext::negInPlace()
{
    for (auto &x : a)
        x = negMod(x, q);
    b = negMod(b, q);
}

void
LweCiphertext::scaleInPlace(u64 scalar)
{
    for (auto &x : a)
        x = mulMod(x, scalar, q);
    b = mulMod(b, scalar, q);
}

LweCiphertext
LweCiphertext::modSwitch(u64 newQ) const
{
    auto round = [&](u64 x) {
        return static_cast<u64>(
            (static_cast<u128>(x) * newQ + q / 2) / q) % newQ;
    };
    LweCiphertext out;
    out.a.resize(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.a[i] = round(a[i]);
    out.b = round(b);
    out.q = newQ;
    return out;
}

LweCiphertext
lweEncrypt(u64 m, const LweSecretKey &key, const TfheParams &params,
           Rng &rng)
{
    const u64 q = params.q;
    LweCiphertext ct;
    ct.q = q;
    ct.a.resize(key.s.size());
    u64 acc = m % q;
    for (size_t i = 0; i < key.s.size(); ++i) {
        ct.a[i] = rng.uniform(q);
        if (key.s[i])
            acc = addMod(acc, mulMod(ct.a[i], key.s[i], q), q);
    }
    ct.b = addMod(acc, rng.gaussianMod(params.lweSigma, q), q);
    return ct;
}

u64
lwePhase(const LweCiphertext &ct, const LweSecretKey &key)
{
    UFC_CHECK(ct.a.size() == key.s.size(), "key dimension mismatch");
    u64 dot = 0;
    for (size_t i = 0; i < key.s.size(); ++i) {
        if (key.s[i])
            dot = addMod(dot, mulMod(ct.a[i], key.s[i], ct.q), ct.q);
    }
    return subMod(ct.b, dot, ct.q);
}

u64
lweDecode(u64 phase, u64 q, u64 t)
{
    return static_cast<u64>(
        (static_cast<u128>(phase) * t + q / 2) / q) % t;
}

u64
lweDecrypt(const LweCiphertext &ct, const LweSecretKey &key, u64 t)
{
    return lweDecode(lwePhase(ct, key), ct.q, t);
}

u64
lweEncode(u64 m, u64 q, u64 t)
{
    return static_cast<u64>(
        (static_cast<u128>(m % t) * q + t / 2) / t);
}

} // namespace tfhe
} // namespace ufc
