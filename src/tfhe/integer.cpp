/**
 * @file
 * Radix integer arithmetic implementation.
 */

#include "tfhe/integer.h"

#include "common/check.h"

namespace ufc {
namespace tfhe {

std::vector<LweCiphertext>
RadixArithmetic::encrypt(u64 value, int digits, const LweSecretKey &key,
                         const TfheParams &params, Rng &rng) const
{
    const u64 base = 1ULL << digitBits_;
    const u64 t = msgSpace();
    std::vector<LweCiphertext> out;
    out.reserve(digits);
    for (int i = 0; i < digits; ++i) {
        const u64 d = (value >> (digitBits_ * i)) & (base - 1);
        out.push_back(lweEncrypt(lweEncode(d, params.q, t), key, params,
                                 rng));
    }
    return out;
}

u64
RadixArithmetic::decrypt(const std::vector<LweCiphertext> &ct,
                         const LweSecretKey &key) const
{
    const u64 t = msgSpace();
    u64 value = 0;
    for (size_t i = 0; i < ct.size(); ++i)
        value += lweDecrypt(ct[i], key, t) << (digitBits_ * i);
    return value;
}

std::vector<LweCiphertext>
RadixArithmetic::propagateCarries(std::vector<LweCiphertext> digits) const
{
    const u64 base = 1ULL << digitBits_;
    const u64 t = msgSpace();

    // LUTs over the padded half-domain [0, t/2).
    std::vector<u64> lowLut(t), carryLut(t);
    for (u64 m = 0; m < t; ++m) {
        lowLut[m] = m & (base - 1);
        carryLut[m] = m >> digitBits_;
    }

    std::vector<LweCiphertext> out;
    out.reserve(digits.size());
    for (size_t i = 0; i < digits.size(); ++i) {
        out.push_back(bc_->programmableBootstrap(digits[i], lowLut, t));
        if (i + 1 < digits.size()) {
            const LweCiphertext carry =
                bc_->programmableBootstrap(digits[i], carryLut, t);
            digits[i + 1].addInPlace(carry);
        }
    }
    return out;
}

std::vector<LweCiphertext>
RadixArithmetic::add(const std::vector<LweCiphertext> &a,
                     const std::vector<LweCiphertext> &b) const
{
    UFC_CHECK(a.size() == b.size(), "radix width mismatch");
    std::vector<LweCiphertext> sum = a;
    for (size_t i = 0; i < sum.size(); ++i)
        sum[i].addInPlace(b[i]);
    return propagateCarries(std::move(sum));
}

std::vector<LweCiphertext>
RadixArithmetic::scalarMul(const std::vector<LweCiphertext> &a,
                           u64 scalar) const
{
    // Iterated addition keeps every intermediate digit inside the carry
    // headroom regardless of the scalar's size.
    UFC_CHECK(scalar >= 1, "scalar must be positive");
    std::vector<LweCiphertext> acc = a;
    for (u64 s = 1; s < scalar; ++s)
        acc = add(acc, a);
    return acc;
}

std::vector<LweCiphertext>
RadixArithmetic::mapDigits(const std::vector<LweCiphertext> &a,
                           const std::vector<u64> &lut) const
{
    const u64 base = 1ULL << digitBits_;
    const u64 t = msgSpace();
    UFC_CHECK(lut.size() == base, "digit lut must have 2^digitBits "
                                  "entries");
    std::vector<u64> fullLut(t);
    for (u64 m = 0; m < t; ++m)
        fullLut[m] = lut[m & (base - 1)] & (base - 1);

    // Normalize first so every digit is inside [0, base).
    auto norm = propagateCarries(a);
    std::vector<LweCiphertext> out;
    out.reserve(norm.size());
    for (const auto &d : norm)
        out.push_back(bc_->programmableBootstrap(d, fullLut, t));
    return out;
}

} // namespace tfhe
} // namespace ufc
