/**
 * @file
 * LWE ciphertexts for the logic scheme (paper Section II-A1).
 *
 * Convention: an LWE encryption of m under binary key s is (a, b) with
 * b = <a, s> + m + e (mod q); decryption computes phase = b - <a, s>.
 */

#ifndef UFC_TFHE_LWE_H
#define UFC_TFHE_LWE_H

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "math/mod_arith.h"
#include "tfhe/params.h"

namespace ufc {
namespace tfhe {

/** LWE secret key of dimension n.  Freshly generated keys are binary,
 *  but arbitrary small values mod q (e.g. the ternary coefficients of a
 *  CKKS ring key during scheme switching) are supported throughout. */
struct LweSecretKey
{
    std::vector<u64> s;

    static LweSecretKey generate(u32 dim, Rng &rng);
};

/** An LWE ciphertext (a_0..a_{n-1}, b) mod q. */
struct LweCiphertext
{
    std::vector<u64> a;
    u64 b = 0;
    u64 q = 0;

    u32 dim() const { return static_cast<u32>(a.size()); }

    /** Noiseless ciphertext (0, m) used as the start of linear combos. */
    static LweCiphertext trivial(u64 m, u32 dim, u64 q);

    void addInPlace(const LweCiphertext &other);
    void subInPlace(const LweCiphertext &other);
    void negInPlace();
    void scaleInPlace(u64 scalar);
    /** Add a constant to the body only (shifts the plaintext). */
    void addConstant(u64 c) { b = addMod(b, c, q); }

    /**
     * Switch the ciphertext modulus from q to 2N by rounding — the first
     * step of functional bootstrapping (packing, paper Section II-C2).
     */
    LweCiphertext modSwitch(u64 newQ) const;
};

/** Fresh encryption of value m (already scaled into Z_q). */
LweCiphertext lweEncrypt(u64 m, const LweSecretKey &key,
                         const TfheParams &params, Rng &rng);

/** Phase b - <a, s> mod q (message plus noise). */
u64 lwePhase(const LweCiphertext &ct, const LweSecretKey &key);

/**
 * Decode a phase to the nearest multiple of q/t and return the message in
 * [0, t).
 */
u64 lweDecode(u64 phase, u64 q, u64 t);

/** Decrypt and decode in one step. */
u64 lweDecrypt(const LweCiphertext &ct, const LweSecretKey &key, u64 t);

/** Encode message m in [0, t) as m * q / t. */
u64 lweEncode(u64 m, u64 q, u64 t);

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_LWE_H
