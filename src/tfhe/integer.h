/**
 * @file
 * Radix-encoded encrypted integers over the logic scheme.
 *
 * A RadixInteger holds an unsigned value as base-2^b digits, one LWE per
 * digit, each with one bit of carry headroom (message space 2^(b+1) with
 * the padding-bit convention).  Addition is linear; carry propagation and
 * digit-wise functions use programmable bootstraps — the structure behind
 * the paper's ZAMA-style NN workloads, where every activation is a PBS.
 */

#ifndef UFC_TFHE_INTEGER_H
#define UFC_TFHE_INTEGER_H

#include "tfhe/bootstrap.h"

namespace ufc {
namespace tfhe {

/** Arithmetic on radix-encoded encrypted unsigned integers. */
class RadixArithmetic
{
  public:
    /**
     * @param bc         bootstrap context (PBS engine)
     * @param digitBits  bits per digit (message space 2^(digitBits+2)
     *                   must fit the scheme's precision; 2 is a safe
     *                   default at test parameters)
     */
    RadixArithmetic(const BootstrapContext *bc, int digitBits = 2)
        : bc_(bc), digitBits_(digitBits)
    {}

    int digitBits() const { return digitBits_; }
    /** Message modulus used per digit ciphertext (with carry room). */
    u64 msgSpace() const { return 1ULL << (digitBits_ + 2); }

    /** Encrypt `value` as `digits` base-2^digitBits digits. */
    std::vector<LweCiphertext> encrypt(u64 value, int digits,
                                       const LweSecretKey &key,
                                       const TfheParams &params,
                                       Rng &rng) const;

    /** Decrypt a radix integer. */
    u64 decrypt(const std::vector<LweCiphertext> &ct,
                const LweSecretKey &key) const;

    /**
     * Homomorphic addition with full carry propagation: one linear add
     * per digit plus two PBS per digit (extract digit, extract carry).
     */
    std::vector<LweCiphertext> add(const std::vector<LweCiphertext> &a,
                                   const std::vector<LweCiphertext> &b)
        const;

    /** Multiply by a small plaintext scalar, then renormalize digits. */
    std::vector<LweCiphertext> scalarMul(
        const std::vector<LweCiphertext> &a, u64 scalar) const;

    /**
     * Apply an arbitrary digit-wise lookup table f: [0, 2^digitBits) ->
     * [0, 2^digitBits) to every digit (one PBS per digit).
     */
    std::vector<LweCiphertext> mapDigits(
        const std::vector<LweCiphertext> &a,
        const std::vector<u64> &lut) const;

  private:
    /** Renormalize: propagate carries so every digit < 2^digitBits. */
    std::vector<LweCiphertext> propagateCarries(
        std::vector<LweCiphertext> digits) const;

    const BootstrapContext *bc_;
    int digitBits_;
};

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_INTEGER_H
