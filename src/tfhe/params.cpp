/**
 * @file
 * TFHE parameter set definitions (paper Table III).
 */

#include "tfhe/params.h"

#include "math/primes.h"

namespace ufc {
namespace tfhe {

namespace {

TfheParams
makeParams(std::string name, u32 n, u32 ringN, int gk, int ksBase,
           int ksLev)
{
    TfheParams p;
    p.name = std::move(name);
    p.lweDim = n;
    p.lweSigma = 3.2;
    p.ringDim = ringN;
    // 32-bit NTT-friendly prime (q ≡ 1 mod 2N).
    p.q = findNttPrime(32, 2ULL * ringN);
    p.rlweSigma = 3.2;
    // Paper's g_k is the number of gadget levels; base chosen so the
    // decomposition covers the top bits of the 32-bit modulus.
    p.gadgetLevels = gk;
    p.gadgetLogBase = (gk == 2) ? 11 : 8;
    p.ksLogBase = ksBase;
    p.ksLevels = ksLev;
    return p;
}

} // namespace

TfheParams
TfheParams::t1()
{
    return makeParams("T1", 500, 1u << 10, 2, 4, 6);
}

TfheParams
TfheParams::t2()
{
    return makeParams("T2", 630, 1u << 10, 3, 4, 6);
}

TfheParams
TfheParams::t3()
{
    return makeParams("T3", 592, 1u << 11, 3, 4, 6);
}

TfheParams
TfheParams::t4()
{
    return makeParams("T4", 991, 1u << 14, 2, 4, 6);
}

TfheParams
TfheParams::testFast()
{
    // Small enough for fast unit tests, with noise margins identical in
    // structure to the production sets.
    return makeParams("TEST", 128, 1u << 9, 3, 4, 6);
}

} // namespace tfhe
} // namespace ufc
