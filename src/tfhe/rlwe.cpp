/**
 * @file
 * RLWE / RGSW operations: external product, CMux, sample extraction.
 */

#include "tfhe/rlwe.h"

#include "common/check.h"

namespace ufc {
namespace tfhe {

RlweSecretKey
RlweSecretKey::generate(const NttTable *table, Rng &rng)
{
    RlweSecretKey key;
    key.s = Poly(table, PolyForm::Coeff);
    for (u64 i = 0; i < table->degree(); ++i)
        key.s[i] = rng.next() & 1;
    return key;
}

RlweCiphertext
RlweCiphertext::trivial(Poly m)
{
    RlweCiphertext ct;
    ct.a = Poly(m.table(), m.form());
    ct.b = std::move(m);
    return ct;
}

void
RlweCiphertext::addInPlace(const RlweCiphertext &other)
{
    a.addInPlace(other.a);
    b.addInPlace(other.b);
}

void
RlweCiphertext::subInPlace(const RlweCiphertext &other)
{
    a.subInPlace(other.a);
    b.subInPlace(other.b);
}

RlweCiphertext
RlweCiphertext::mulByMonomial(i64 r) const
{
    RlweCiphertext out;
    out.a = a.mulByMonomial(r);
    out.b = b.mulByMonomial(r);
    return out;
}

void
RlweCiphertext::toCoeff()
{
    a.toCoeff();
    b.toCoeff();
}

void
RlweCiphertext::toEval()
{
    a.toEval();
    b.toEval();
}

RlweCiphertext
rlweEncrypt(const Poly &m, const RlweSecretKey &key, double sigma, Rng &rng)
{
    UFC_CHECK(m.form() == PolyForm::Coeff, "message must be in Coeff form");
    RlweCiphertext ct;
    ct.a = Poly(m.table(), PolyForm::Coeff);
    ct.a.sampleUniform(rng);

    // b = a*s + m + e
    ct.b = negacyclicMul(ct.a, key.s); // Eval form
    ct.b.toCoeff();
    Poly e(m.table(), PolyForm::Coeff);
    e.sampleGaussian(rng, sigma);
    ct.b.addInPlace(m);
    ct.b.addInPlace(e);
    return ct;
}

Poly
rlwePhase(const RlweCiphertext &ct, const RlweSecretKey &key)
{
    RlweCiphertext c = ct;
    c.toCoeff();
    Poly as = negacyclicMul(c.a, key.s);
    as.toCoeff();
    Poly phase = c.b;
    phase.subInPlace(as);
    return phase;
}

RgswCiphertext
rgswEncrypt(const Poly &m, const RlweSecretKey &key, const Gadget &gadget,
            double sigma, Rng &rng)
{
    UFC_CHECK(m.form() == PolyForm::Coeff, "message must be in Coeff form");
    const int l = gadget.levels();
    RgswCiphertext out;
    out.levels = l;
    out.rows.reserve(2 * l);

    Poly zero(m.table(), PolyForm::Coeff);
    for (int i = 0; i < 2 * l; ++i) {
        RlweCiphertext row = rlweEncrypt(zero, key, sigma, rng);
        // Add m * g_i to the `a` slot (rows 0..l-1) or `b` slot.
        Poly mg = m;
        mg.scaleInPlace(gadget.g(i % l));
        if (i < l)
            row.a.addInPlace(mg);
        else
            row.b.addInPlace(mg);
        row.toEval();
        out.rows.push_back(std::move(row));
    }
    return out;
}

RlweCiphertext
externalProduct(const RgswCiphertext &rgsw, const RlweCiphertext &rlwe,
                const Gadget &gadget)
{
    const int l = gadget.levels();
    UFC_CHECK(static_cast<int>(rgsw.rows.size()) == 2 * l,
              "RGSW row count mismatch");
    RlweCiphertext in = rlwe;
    in.toCoeff();
    const NttTable *table = in.b.table();
    const u64 n = in.b.degree();

    // Decompose a and b into l digit polynomials each (Decomp primitive).
    std::vector<Poly> digits;
    digits.reserve(2 * l);
    for (int i = 0; i < 2 * l; ++i)
        digits.emplace_back(table, PolyForm::Coeff);
    std::vector<u64> d(l);
    for (u64 c = 0; c < n; ++c) {
        gadget.decompose(in.a[c], d.data());
        for (int i = 0; i < l; ++i)
            digits[i][c] = d[i];
        gadget.decompose(in.b[c], d.data());
        for (int i = 0; i < l; ++i)
            digits[l + i][c] = d[i];
    }

    // NTT each digit polynomial, then accumulate against the RGSW rows
    // (EWMM + EWMA primitives).
    RlweCiphertext acc;
    acc.a = Poly(table, PolyForm::Eval);
    acc.b = Poly(table, PolyForm::Eval);
    for (int i = 0; i < 2 * l; ++i) {
        digits[i].toEval();
        acc.a.fmaEval(digits[i], rgsw.rows[i].a);
        acc.b.fmaEval(digits[i], rgsw.rows[i].b);
    }
    acc.toCoeff();
    return acc;
}

RlweCiphertext
cmux(const RgswCiphertext &c, const RlweCiphertext &ct0,
     const RlweCiphertext &ct1, const Gadget &gadget)
{
    RlweCiphertext diff = ct1;
    diff.subInPlace(ct0);
    RlweCiphertext sel = externalProduct(c, diff, gadget);
    sel.addInPlace(ct0);
    return sel;
}

LweCiphertext
sampleExtract(const RlweCiphertext &ct, u64 index)
{
    RlweCiphertext c = ct;
    c.toCoeff();
    const u64 n = c.b.degree();
    const u64 q = c.b.modulus();
    UFC_CHECK(index < n, "extract index out of range");

    LweCiphertext out;
    out.q = q;
    out.a.resize(n);
    // phase_k = b_k - sum_{i<=k} a_{k-i} s_i + sum_{i>k} a_{N+k-i} s_i
    for (u64 i = 0; i < n; ++i) {
        if (i <= index)
            out.a[i] = c.a[index - i];
        else
            out.a[i] = negMod(c.a[n + index - i], q);
    }
    out.b = c.b[index];
    return out;
}

} // namespace tfhe
} // namespace ufc
