/**
 * @file
 * TFHE parameter sets.
 *
 * UFC implements the logic scheme over an NTT-friendly prime modulus
 * (paper Section VII-D: "UFC supports NTT-friendly primes and Strix
 * supports powers of two, both 32-bit integer"), so all ciphertext
 * components here live in Z_q for a prime q ≡ 1 (mod 2N).
 *
 * The named sets T1-T4 mirror paper Table III; `testFast()` is a smaller
 * set for unit tests.  Noise parameters are chosen for functional
 * correctness of this software reproduction, not re-validated for 128-bit
 * security.
 */

#ifndef UFC_TFHE_PARAMS_H
#define UFC_TFHE_PARAMS_H

#include <string>

#include "common/types.h"

namespace ufc {
namespace tfhe {

/** All algorithmic parameters of the logic scheme. */
struct TfheParams
{
    std::string name;

    // LWE (small) dimension and noise.
    u32 lweDim = 0;          ///< n
    double lweSigma = 0.0;   ///< fresh LWE noise stddev

    // RLWE ring.
    u32 ringDim = 0;         ///< N
    u64 q = 0;               ///< NTT-friendly prime ciphertext modulus
    double rlweSigma = 0.0;  ///< RLWE/RGSW noise stddev

    // RGSW gadget (external products in blind rotation).
    int gadgetLogBase = 0;   ///< log2(Bg)
    int gadgetLevels = 0;    ///< l (paper's g_k)

    // LWE-to-LWE key switching.
    int ksLogBase = 0;       ///< log2(Bks)
    int ksLevels = 0;        ///< d_ks

    /** Paper Table III parameter sets (q filled with an NTT prime). */
    static TfheParams t1();
    static TfheParams t2();
    static TfheParams t3();
    static TfheParams t4();

    /** Small parameters for fast unit tests. */
    static TfheParams testFast();
};

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_PARAMS_H
