/**
 * @file
 * RLWE and RGSW ciphertexts for the logic scheme (paper Sections II-A2/3).
 *
 * Convention mirrors lwe.h: RLWE(m) = (a, b) with b = a*s + m + e over
 * R_q = Z_q[X]/(X^N + 1).  RGSW(m) is the 2l x 2 matrix Z + m*G with
 * G = I_2 (x) g for the gadget vector g; external products with RLWE
 * ciphertexts implement CMux and blind rotation.
 */

#ifndef UFC_TFHE_RLWE_H
#define UFC_TFHE_RLWE_H

#include <vector>

#include "common/rng.h"
#include "math/gadget.h"
#include "poly/poly.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"

namespace ufc {
namespace tfhe {

/** Binary RLWE secret key s(X) with coefficients in {0, 1}. */
struct RlweSecretKey
{
    Poly s; ///< coefficient form

    static RlweSecretKey generate(const NttTable *table, Rng &rng);
};

/** An RLWE ciphertext (a, b) in R_q^2. */
struct RlweCiphertext
{
    Poly a;
    Poly b;

    /** Noiseless encryption (0, m). */
    static RlweCiphertext trivial(Poly m);

    u64 degree() const { return b.degree(); }
    u64 modulus() const { return b.modulus(); }

    void addInPlace(const RlweCiphertext &other);
    void subInPlace(const RlweCiphertext &other);
    /** Multiply both components by the monomial X^r (coefficient form). */
    RlweCiphertext mulByMonomial(i64 r) const;
    void toCoeff();
    void toEval();
};

/** Fresh RLWE encryption of message polynomial m (coefficient form). */
RlweCiphertext rlweEncrypt(const Poly &m, const RlweSecretKey &key,
                           double sigma, Rng &rng);

/** Phase b - a*s (message plus noise), coefficient form. */
Poly rlwePhase(const RlweCiphertext &ct, const RlweSecretKey &key);

/**
 * RGSW ciphertext: rows 0..l-1 encrypt m*g_i in the `a` slot, rows l..2l-1
 * encrypt m*g_i in the `b` slot; every row is an RLWE encryption of zero
 * plus the gadget term.  Rows are stored in evaluation form, ready for
 * external products.
 */
struct RgswCiphertext
{
    std::vector<RlweCiphertext> rows; ///< 2l rows, Eval form
    int levels = 0;
};

/** Encrypt a scalar (0/1 in blind rotation) or small polynomial m. */
RgswCiphertext rgswEncrypt(const Poly &m, const RlweSecretKey &key,
                           const Gadget &gadget, double sigma, Rng &rng);

/**
 * External product RGSW(m) ⊡ RLWE(mu) -> RLWE(m * mu).
 * Decomposes the RLWE components (Decomp primitive), transforms the digit
 * polynomials to evaluation form (NTT primitive) and accumulates the
 * products against the RGSW rows (EWMM/EWMA primitives) — exactly the
 * primitive chain of paper Figure 4.
 */
RlweCiphertext externalProduct(const RgswCiphertext &rgsw,
                               const RlweCiphertext &rlwe,
                               const Gadget &gadget);

/** CMux(c, ct0, ct1) = ct0 + c ⊡ (ct1 - ct0); selects ct1 when c = 1. */
RlweCiphertext cmux(const RgswCiphertext &c, const RlweCiphertext &ct0,
                    const RlweCiphertext &ct1, const Gadget &gadget);

/**
 * Extract the LWE encryption of the coefficient `index` of the RLWE
 * plaintext, under the key given by the RLWE key coefficients (the Extract
 * primitive of paper Table I).
 */
LweCiphertext sampleExtract(const RlweCiphertext &ct, u64 index = 0);

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_RLWE_H
