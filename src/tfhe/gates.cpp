/**
 * @file
 * Bootstrapped gate implementations.
 */

#include "tfhe/gates.h"

namespace ufc {
namespace tfhe {

namespace {

/** Encoding of true (+q/8) for the gate plaintext space. */
u64
trueValue(u64 q)
{
    return q / 8;
}

} // namespace

LweCiphertext
encryptBit(bool bit, const LweSecretKey &key, const TfheParams &params,
           Rng &rng)
{
    const u64 q = params.q;
    const u64 m = bit ? trueValue(q) : q - trueValue(q);
    return lweEncrypt(m, key, params, rng);
}

bool
decryptBit(const LweCiphertext &ct, const LweSecretKey &key)
{
    const u64 phase = lwePhase(ct, key);
    // True iff the phase lies in the upper half-plane around +q/8, i.e.
    // in [0, q/2).
    return phase < ct.q / 2;
}

LweCiphertext
gateNand(const BootstrapContext &bc, const LweCiphertext &a,
         const LweCiphertext &b)
{
    // lin = (0, q/8) - a - b
    LweCiphertext lin =
        LweCiphertext::trivial(trueValue(a.q), a.dim(), a.q);
    lin.subInPlace(a);
    lin.subInPlace(b);
    return bc.signBootstrap(lin);
}

LweCiphertext
gateAnd(const BootstrapContext &bc, const LweCiphertext &a,
        const LweCiphertext &b)
{
    // lin = a + b - (0, q/8)
    LweCiphertext lin = a;
    lin.addInPlace(b);
    lin.subInPlace(LweCiphertext::trivial(trueValue(a.q), a.dim(), a.q));
    return bc.signBootstrap(lin);
}

LweCiphertext
gateOr(const BootstrapContext &bc, const LweCiphertext &a,
       const LweCiphertext &b)
{
    // lin = a + b + (0, q/8)
    LweCiphertext lin = a;
    lin.addInPlace(b);
    lin.addInPlace(LweCiphertext::trivial(trueValue(a.q), a.dim(), a.q));
    return bc.signBootstrap(lin);
}

LweCiphertext
gateNor(const BootstrapContext &bc, const LweCiphertext &a,
        const LweCiphertext &b)
{
    LweCiphertext lin = a;
    lin.addInPlace(b);
    lin.addInPlace(LweCiphertext::trivial(trueValue(a.q), a.dim(), a.q));
    lin.negInPlace();
    return bc.signBootstrap(lin);
}

LweCiphertext
gateXor(const BootstrapContext &bc, const LweCiphertext &a,
        const LweCiphertext &b)
{
    // lin = 2*(a + b) + (0, q/4)
    LweCiphertext lin = a;
    lin.addInPlace(b);
    lin.scaleInPlace(2);
    lin.addInPlace(
        LweCiphertext::trivial(a.q / 4, a.dim(), a.q));
    return bc.signBootstrap(lin);
}

LweCiphertext
gateXnor(const BootstrapContext &bc, const LweCiphertext &a,
         const LweCiphertext &b)
{
    LweCiphertext lin = a;
    lin.addInPlace(b);
    lin.scaleInPlace(2);
    lin.addInPlace(
        LweCiphertext::trivial(a.q / 4, a.dim(), a.q));
    lin.negInPlace();
    return bc.signBootstrap(lin);
}

LweCiphertext
gateNot(const LweCiphertext &a)
{
    LweCiphertext out = a;
    out.negInPlace();
    return out;
}

LweCiphertext
gateMux(const BootstrapContext &bc, const LweCiphertext &s,
        const LweCiphertext &a, const LweCiphertext &b)
{
    const LweCiphertext sa = gateAnd(bc, s, a);
    const LweCiphertext nsb = gateAnd(bc, gateNot(s), b);
    return gateOr(bc, sa, nsb);
}

} // namespace tfhe
} // namespace ufc
