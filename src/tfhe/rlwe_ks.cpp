/**
 * @file
 * RLWE key switching implementation.
 */

#include "tfhe/rlwe_ks.h"

#include "common/check.h"

namespace ufc {
namespace tfhe {

RlweKeySwitchKey::RlweKeySwitchKey(const Poly &srcKey,
                                   const RlweSecretKey &dstKey,
                                   const Gadget &gadget, double sigma,
                                   Rng &rng)
    : gadget_(std::make_unique<Gadget>(gadget))
{
    UFC_CHECK(srcKey.form() == PolyForm::Coeff,
              "source key must be in Coeff form");
    const int l = gadget_->levels();
    rows_.reserve(l);
    for (int i = 0; i < l; ++i) {
        Poly m = srcKey;
        m.scaleInPlace(gadget_->g(i));
        RlweCiphertext row = rlweEncrypt(m, dstKey, sigma, rng);
        row.toEval();
        rows_.push_back(std::move(row));
    }
}

RlweCiphertext
RlweKeySwitchKey::apply(const RlweCiphertext &ct) const
{
    // phase = b - a*srcKey.  Decompose a, accumulate against the rows:
    //   b' = b - sum_i d_i * kb_i,  a' = -sum_i d_i * ka_i
    // so that b' - a'*dstKey = phase - sum_i d_i * e_i.
    RlweCiphertext in = ct;
    in.toCoeff();
    const NttTable *table = in.b.table();
    const u64 n = in.b.degree();
    const int l = gadget_->levels();

    std::vector<Poly> digits;
    digits.reserve(l);
    for (int i = 0; i < l; ++i)
        digits.emplace_back(table, PolyForm::Coeff);
    std::vector<u64> d(l);
    for (u64 c = 0; c < n; ++c) {
        gadget_->decompose(in.a[c], d.data());
        for (int i = 0; i < l; ++i)
            digits[i][c] = d[i];
    }

    RlweCiphertext acc;
    acc.a = Poly(table, PolyForm::Eval);
    acc.b = Poly(table, PolyForm::Eval);
    for (int i = 0; i < l; ++i) {
        digits[i].toEval();
        acc.a.fmaEval(digits[i], rows_[i].a);
        acc.b.fmaEval(digits[i], rows_[i].b);
    }
    acc.toCoeff();

    RlweCiphertext out;
    out.a = acc.a;
    out.a.negInPlace();
    out.b = in.b;
    out.b.subInPlace(acc.b);
    return out;
}

RlweCiphertext
applyRingAutomorphism(const RlweCiphertext &ct, u64 k,
                      const RlweKeySwitchKey &ksk)
{
    // Applying sigma_k to both components yields an encryption of
    // sigma_k(m) under sigma_k(s); the key switch returns to s.
    RlweCiphertext in = ct;
    in.toCoeff();
    RlweCiphertext rotated;
    rotated.a = in.a.automorphism(k);
    rotated.b = in.b.automorphism(k);
    return ksk.apply(rotated);
}

} // namespace tfhe
} // namespace ufc
