/**
 * @file
 * Bootstrapped boolean gates over LWE ciphertexts.
 *
 * Booleans are encoded as +q/8 (true) and -q/8 (false).  Every binary gate
 * is one linear combination plus one sign bootstrap, the standard TFHE
 * gate recipe the paper's logic-scheme workloads are built from.
 */

#ifndef UFC_TFHE_GATES_H
#define UFC_TFHE_GATES_H

#include "tfhe/bootstrap.h"

namespace ufc {
namespace tfhe {

/** Encrypt a boolean under the small LWE key. */
LweCiphertext encryptBit(bool bit, const LweSecretKey &key,
                         const TfheParams &params, Rng &rng);

/** Decrypt a boolean. */
bool decryptBit(const LweCiphertext &ct, const LweSecretKey &key);

LweCiphertext gateNand(const BootstrapContext &bc, const LweCiphertext &a,
                       const LweCiphertext &b);
LweCiphertext gateAnd(const BootstrapContext &bc, const LweCiphertext &a,
                      const LweCiphertext &b);
LweCiphertext gateOr(const BootstrapContext &bc, const LweCiphertext &a,
                     const LweCiphertext &b);
LweCiphertext gateXor(const BootstrapContext &bc, const LweCiphertext &a,
                      const LweCiphertext &b);
LweCiphertext gateXnor(const BootstrapContext &bc, const LweCiphertext &a,
                       const LweCiphertext &b);
LweCiphertext gateNor(const BootstrapContext &bc, const LweCiphertext &a,
                      const LweCiphertext &b);
/** NOT is noise-free (pure negation, no bootstrap). */
LweCiphertext gateNot(const LweCiphertext &a);
/** MUX(s, a, b) = s ? a : b, built from three bootstrapped gates. */
LweCiphertext gateMux(const BootstrapContext &bc, const LweCiphertext &s,
                      const LweCiphertext &a, const LweCiphertext &b);

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_GATES_H
