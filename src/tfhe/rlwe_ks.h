/**
 * @file
 * Gadget-based RLWE-to-RLWE key switching.
 *
 * Switches an RLWE ciphertext under a source ring key to the target ring
 * key: the workhorse behind homomorphic automorphisms (the sigma_k(s) -> s
 * switch used by EvalTrace in ring packing) and generic ring-key changes
 * during scheme switching.
 */

#ifndef UFC_TFHE_RLWE_KS_H
#define UFC_TFHE_RLWE_KS_H

#include "tfhe/rlwe.h"

namespace ufc {
namespace tfhe {

/** Key-switching key: l RLWE rows encrypting srcKey * g_i. */
class RlweKeySwitchKey
{
  public:
    /**
     * @param srcKey     the key (coefficient form) the input is under
     * @param dstKey     the key the output should be under
     * @param gadget     decomposition parameters
     * @param sigma      encryption noise for the key rows
     */
    RlweKeySwitchKey(const Poly &srcKey, const RlweSecretKey &dstKey,
                     const Gadget &gadget, double sigma, Rng &rng);

    /** Switch ct (under srcKey) to an encryption under dstKey. */
    RlweCiphertext apply(const RlweCiphertext &ct) const;

    const Gadget &gadget() const { return *gadget_; }

  private:
    std::unique_ptr<Gadget> gadget_;
    std::vector<RlweCiphertext> rows_; ///< Eval form
};

/**
 * Homomorphic automorphism: apply X -> X^k to the plaintext of `ct` using
 * the key-switching key built for sigma_k(s) -> s.
 */
RlweCiphertext applyRingAutomorphism(const RlweCiphertext &ct, u64 k,
                                     const RlweKeySwitchKey &ksk);

} // namespace tfhe
} // namespace ufc

#endif // UFC_TFHE_RLWE_KS_H
