/**
 * @file
 * RNS polynomials: a polynomial over R_Q with Q = q_0 * ... * q_{L-1}
 * stored as one word-size limb per modulus (paper Section II-B2).
 *
 * RingContext owns the per-modulus NTT tables for one ring degree and hands
 * out limb tables on demand, so every Poly limb across the CKKS modulus
 * chain shares precomputation.
 */

#ifndef UFC_POLY_RNS_POLY_H
#define UFC_POLY_RNS_POLY_H

#include <vector>

#include "common/rng.h"
#include "math/rns.h"
#include "poly/poly.h"

namespace ufc {

/**
 * Shared NTT tables for a fixed ring degree across many moduli.
 * Backed by the process-wide twiddle cache (math/ntt_cache.h), so
 * distinct contexts of the same degree — and the CG-NTT's packed
 * transforms — all share one table per modulus, and lazy table
 * creation is safe from limb-parallel code.
 */
class RingContext
{
  public:
    explicit RingContext(u64 degree) : degree_(degree) {}

    u64 degree() const { return degree_; }

    /** Lazily built NTT table for modulus q. */
    const NttTable &table(u64 q) const;

  private:
    u64 degree_;
};

/** A polynomial over R_Q in RNS form: one Poly limb per modulus. */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /** Zero polynomial over the given moduli. */
    RnsPoly(const RingContext *ctx, const std::vector<u64> &moduli,
            PolyForm form);

    u64 degree() const { return ctx_->degree(); }
    size_t limbCount() const { return limbs_.size(); }
    const RingContext *context() const { return ctx_; }
    PolyForm form() const { return limbs_.empty() ? PolyForm::Coeff
                                                  : limbs_[0].form(); }

    Poly &limb(size_t i) { return limbs_[i]; }
    const Poly &limb(size_t i) const { return limbs_[i]; }
    u64 modulus(size_t i) const { return limbs_[i].modulus(); }
    std::vector<u64> moduli() const;

    void toEval();
    void toCoeff();

    void addInPlace(const RnsPoly &other);
    void subInPlace(const RnsPoly &other);
    void negInPlace();
    /** Multiply every limb by a per-limb scalar. */
    void scaleInPlace(const std::vector<u64> &scalars);
    /** Multiply by a single small integer (reduced per limb). */
    void scaleInPlace(u64 scalar);
    void mulEvalInPlace(const RnsPoly &other);
    void fmaEval(const RnsPoly &a, const RnsPoly &b);

    RnsPoly automorphism(u64 k) const;

    /** Drop the last limb (after rescale, paper Section II-B2). */
    void dropLastLimb();

    /**
     * Append limbs for new moduli, each computed by base-converting the
     * existing limbs — the ModUp half of hybrid key switching.  Requires
     * coefficient form.
     */
    void extendBasis(const std::vector<u64> &newModuli);

    void sampleUniform(Rng &rng);
    void sampleTernary(Rng &rng);
    void sampleGaussian(Rng &rng, double sigma);

  private:
    const RingContext *ctx_ = nullptr;
    std::vector<Poly> limbs_;
};

} // namespace ufc

#endif // UFC_POLY_RNS_POLY_H
