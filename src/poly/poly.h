/**
 * @file
 * Single-modulus polynomial in Z_q[X]/(X^N + 1).
 *
 * Poly is the building block for both TFHE ciphertext components (one
 * word-size modulus) and CKKS RNS limbs (see poly/rns_poly.h).  A Poly
 * carries its representation form explicitly; element-wise multiplication
 * is only legal in evaluation (NTT) form, automorphisms and monomial
 * rotations are supported in both forms.
 */

#ifndef UFC_POLY_POLY_H
#define UFC_POLY_POLY_H

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/types.h"
#include "math/ntt.h"

namespace ufc {

/** Representation of polynomial storage. */
enum class PolyForm { Coeff, Eval };

/** A polynomial over Z_q[X]/(X^N + 1) with an attached NTT table. */
class Poly
{
  public:
    Poly() = default;

    /** Zero polynomial bound to an NTT table (not owned). */
    Poly(const NttTable *table, PolyForm form)
        : table_(table), form_(form),
          coeffs_(table->degree(), 0)
    {}

    Poly(const NttTable *table, PolyForm form, std::vector<u64> coeffs)
        : table_(table), form_(form), coeffs_(std::move(coeffs))
    {
        UFC_CHECK(coeffs_.size() == table_->degree(), "degree mismatch");
    }

    u64 degree() const { return table_->degree(); }
    u64 modulus() const { return table_->modulus().value(); }
    const NttTable *table() const { return table_; }
    PolyForm form() const { return form_; }
    bool isEval() const { return form_ == PolyForm::Eval; }

    u64 &operator[](size_t i) { return coeffs_[i]; }
    u64 operator[](size_t i) const { return coeffs_[i]; }
    const std::vector<u64> &data() const { return coeffs_; }
    std::vector<u64> &data() { return coeffs_; }

    /** Convert (in place) to evaluation form; no-op if already there. */
    void
    toEval()
    {
        if (form_ == PolyForm::Coeff) {
            table_->forward(coeffs_);
            form_ = PolyForm::Eval;
        }
    }

    /** Convert (in place) to coefficient form; no-op if already there. */
    void
    toCoeff()
    {
        if (form_ == PolyForm::Eval) {
            table_->inverse(coeffs_);
            form_ = PolyForm::Coeff;
        }
    }

    /** this += other (element-wise in either matching form). */
    void addInPlace(const Poly &other);
    /** this -= other. */
    void subInPlace(const Poly &other);
    /** this = -this. */
    void negInPlace();
    /** this *= scalar (mod q). */
    void scaleInPlace(u64 scalar);
    /** this *= other, element-wise; both must be in Eval form. */
    void mulEvalInPlace(const Poly &other);
    /** this += a * b, element-wise; all three must be in Eval form. */
    void fmaEval(const Poly &a, const Poly &b);

    /**
     * Apply the Galois automorphism X -> X^k (k odd).  Works in either
     * form: index permutation with sign fix-ups in coefficient form, pure
     * index permutation in evaluation form.
     */
    Poly automorphism(u64 k) const;

    /**
     * Multiply by the monomial X^r (r may be negative / any integer; it is
     * reduced mod 2N) — the negacyclic "Rotate" primitive of Table I.
     * Coefficient form only.
     */
    Poly mulByMonomial(i64 r) const;

    /** Fill with uniform random values in [0, q). */
    void sampleUniform(Rng &rng);
    /** Fill with ternary {-1,0,1} values (coefficient form). */
    void sampleTernary(Rng &rng);
    /** Fill with rounded gaussians of parameter sigma (coefficient form). */
    void sampleGaussian(Rng &rng, double sigma);

  private:
    void
    checkCompatible(const Poly &other) const
    {
        UFC_CHECK(table_ == other.table_ && form_ == other.form_,
                  "polynomial form/ring mismatch");
    }

    const NttTable *table_ = nullptr;
    PolyForm form_ = PolyForm::Coeff;
    std::vector<u64> coeffs_;
};

/** Full negacyclic product c = a * b through the NTT (inputs unchanged). */
Poly negacyclicMul(const Poly &a, const Poly &b);

} // namespace ufc

#endif // UFC_POLY_POLY_H
