/**
 * @file
 * RNS polynomial implementation.
 *
 * Limb-wise operations (NTT form changes, add/sub/neg/scale, eval-domain
 * products, automorphisms) act on independent per-modulus arrays, so they
 * fan out across the process-wide kernel pool with parallelFor.  Each
 * parallel index writes only its own limb, which keeps results
 * bit-identical at any thread count (the determinism contract the
 * kernel differential tests assert).  Sampling stays serial: all limbs
 * consume one shared sequential Rng stream.
 */

#include "poly/rns_poly.h"

#include "common/check.h"
#include "common/parallel.h"
#include "common/prof.h"
#include "math/ntt_cache.h"

namespace ufc {

const NttTable &
RingContext::table(u64 q) const
{
    return *cachedNttTable(degree_, q);
}

RnsPoly::RnsPoly(const RingContext *ctx, const std::vector<u64> &moduli,
                 PolyForm form)
    : ctx_(ctx)
{
    limbs_.reserve(moduli.size());
    for (u64 q : moduli)
        limbs_.emplace_back(&ctx->table(q), form);
}

std::vector<u64>
RnsPoly::moduli() const
{
    std::vector<u64> out;
    out.reserve(limbs_.size());
    for (const auto &l : limbs_)
        out.push_back(l.modulus());
    return out;
}

void
RnsPoly::toEval()
{
    UFC_PROF_SCOPE("rns.to_eval");
    parallelFor(limbs_.size(), [&](size_t i) { limbs_[i].toEval(); });
}

void
RnsPoly::toCoeff()
{
    UFC_PROF_SCOPE("rns.to_coeff");
    parallelFor(limbs_.size(), [&](size_t i) { limbs_[i].toCoeff(); });
}

void
RnsPoly::addInPlace(const RnsPoly &other)
{
    UFC_CHECK(limbs_.size() == other.limbs_.size(), "limb count mismatch");
    parallelFor(limbs_.size(),
                [&](size_t i) { limbs_[i].addInPlace(other.limbs_[i]); });
}

void
RnsPoly::subInPlace(const RnsPoly &other)
{
    UFC_CHECK(limbs_.size() == other.limbs_.size(), "limb count mismatch");
    parallelFor(limbs_.size(),
                [&](size_t i) { limbs_[i].subInPlace(other.limbs_[i]); });
}

void
RnsPoly::negInPlace()
{
    parallelFor(limbs_.size(), [&](size_t i) { limbs_[i].negInPlace(); });
}

void
RnsPoly::scaleInPlace(const std::vector<u64> &scalars)
{
    UFC_CHECK(scalars.size() == limbs_.size(), "scalar count mismatch");
    parallelFor(limbs_.size(),
                [&](size_t i) { limbs_[i].scaleInPlace(scalars[i]); });
}

void
RnsPoly::scaleInPlace(u64 scalar)
{
    parallelFor(limbs_.size(),
                [&](size_t i) { limbs_[i].scaleInPlace(scalar); });
}

void
RnsPoly::mulEvalInPlace(const RnsPoly &other)
{
    UFC_PROF_SCOPE("rns.mul_eval");
    UFC_CHECK(limbs_.size() == other.limbs_.size(), "limb count mismatch");
    parallelFor(limbs_.size(), [&](size_t i) {
        limbs_[i].mulEvalInPlace(other.limbs_[i]);
    });
}

void
RnsPoly::fmaEval(const RnsPoly &a, const RnsPoly &b)
{
    UFC_PROF_SCOPE("rns.fma_eval");
    UFC_CHECK(limbs_.size() == a.limbs_.size() &&
              limbs_.size() == b.limbs_.size(), "limb count mismatch");
    parallelFor(limbs_.size(), [&](size_t i) {
        limbs_[i].fmaEval(a.limbs_[i], b.limbs_[i]);
    });
}

RnsPoly
RnsPoly::automorphism(u64 k) const
{
    UFC_PROF_SCOPE("rns.automorphism");
    RnsPoly out;
    out.ctx_ = ctx_;
    out.limbs_.resize(limbs_.size());
    parallelFor(limbs_.size(), [&](size_t i) {
        out.limbs_[i] = limbs_[i].automorphism(k);
    });
    return out;
}

void
RnsPoly::dropLastLimb()
{
    UFC_CHECK(!limbs_.empty(), "no limb to drop");
    limbs_.pop_back();
}

void
RnsPoly::extendBasis(const std::vector<u64> &newModuli)
{
    UFC_PROF_SCOPE("rns.extend_basis");
    UFC_CHECK(form() == PolyForm::Coeff, "extendBasis requires Coeff form");
    const u64 n = degree();
    RnsBasis from(moduli());
    RnsBasis to(newModuli);

    std::vector<Poly> extra;
    extra.reserve(newModuli.size());
    for (u64 q : newModuli)
        extra.emplace_back(&ctx_->table(q), PolyForm::Coeff);

    // Base conversion is independent per coefficient; parallelize over
    // coefficient blocks (blocks write disjoint ranges of every extra
    // limb, so the result is thread-count invariant).
    const u64 block = 512;
    const u64 numBlocks = (n + block - 1) / block;
    parallelFor(numBlocks, [&](size_t bi) {
        std::vector<u64> residues(limbs_.size());
        const u64 lo = bi * block;
        const u64 hi = lo + block < n ? lo + block : n;
        for (u64 c = lo; c < hi; ++c) {
            for (size_t j = 0; j < limbs_.size(); ++j)
                residues[j] = limbs_[j][c];
            const std::vector<u64> conv = baseConvert(residues, from, to);
            for (size_t i = 0; i < extra.size(); ++i)
                extra[i][c] = conv[i];
        }
    });
    for (auto &p : extra)
        limbs_.push_back(std::move(p));
}

void
RnsPoly::sampleUniform(Rng &rng)
{
    // Independent uniform residues per limb give a uniform element of R_Q.
    for (auto &l : limbs_)
        l.sampleUniform(rng);
}

void
RnsPoly::sampleTernary(Rng &rng)
{
    // One ternary draw per coefficient, reduced into every limb, so all
    // limbs represent the same ring element.
    UFC_CHECK(form() == PolyForm::Coeff, "sampling requires Coeff form");
    const u64 n = degree();
    for (u64 c = 0; c < n; ++c) {
        const u64 t = rng.next() % 3; // 0, 1, 2 -> 0, 1, -1
        for (auto &l : limbs_) {
            const u64 q = l.modulus();
            l[c] = (t == 0) ? 0 : (t == 1 ? 1 : q - 1);
        }
    }
}

void
RnsPoly::sampleGaussian(Rng &rng, double sigma)
{
    UFC_CHECK(form() == PolyForm::Coeff, "sampling requires Coeff form");
    const u64 n = degree();
    for (u64 c = 0; c < n; ++c) {
        const i64 e = static_cast<i64>(std::llround(rng.gaussian(sigma)));
        for (auto &l : limbs_) {
            const i64 q = static_cast<i64>(l.modulus());
            i64 r = e % q;
            if (r < 0)
                r += q;
            l[c] = static_cast<u64>(r);
        }
    }
}

} // namespace ufc
