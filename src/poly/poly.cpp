/**
 * @file
 * Polynomial arithmetic implementation.
 */

#include "poly/poly.h"

namespace ufc {

void
Poly::addInPlace(const Poly &other)
{
    checkCompatible(other);
    const u64 q = modulus();
    for (size_t i = 0; i < coeffs_.size(); ++i)
        coeffs_[i] = addMod(coeffs_[i], other.coeffs_[i], q);
}

void
Poly::subInPlace(const Poly &other)
{
    checkCompatible(other);
    const u64 q = modulus();
    for (size_t i = 0; i < coeffs_.size(); ++i)
        coeffs_[i] = subMod(coeffs_[i], other.coeffs_[i], q);
}

void
Poly::negInPlace()
{
    const u64 q = modulus();
    for (auto &c : coeffs_)
        c = negMod(c, q);
}

void
Poly::scaleInPlace(u64 scalar)
{
    const Modulus &m = table_->modulus();
    scalar = m.reduce(scalar);
    const u64 shoup = m.shoupPrecompute(scalar);
    for (auto &c : coeffs_)
        c = m.mulShoup(c, scalar, shoup);
}

void
Poly::mulEvalInPlace(const Poly &other)
{
    checkCompatible(other);
    UFC_CHECK(isEval(), "element-wise multiply requires Eval form");
    const Modulus &m = table_->modulus();
    for (size_t i = 0; i < coeffs_.size(); ++i)
        coeffs_[i] = m.mul(coeffs_[i], other.coeffs_[i]);
}

void
Poly::fmaEval(const Poly &a, const Poly &b)
{
    checkCompatible(a);
    checkCompatible(b);
    UFC_CHECK(isEval(), "fma requires Eval form");
    const Modulus &m = table_->modulus();
    const u64 q = m.value();
    for (size_t i = 0; i < coeffs_.size(); ++i)
        coeffs_[i] = addMod(coeffs_[i], m.mul(a.coeffs_[i], b.coeffs_[i]), q);
}

Poly
Poly::automorphism(u64 k) const
{
    const u64 n = degree();
    const u64 twoN = 2 * n;
    k %= twoN;
    UFC_CHECK(k % 2 == 1, "automorphism index must be odd");
    Poly out(table_, form_);
    const u64 q = modulus();
    if (form_ == PolyForm::Coeff) {
        // X^i -> X^(ik mod 2N); exponents >= N pick up a sign from
        // X^N = -1.
        for (u64 i = 0; i < n; ++i) {
            const u64 e = static_cast<u64>(
                (static_cast<u128>(i) * k) % twoN);
            if (e < n)
                out.coeffs_[e] = addMod(out.coeffs_[e], coeffs_[i], q);
            else
                out.coeffs_[e - n] =
                    subMod(out.coeffs_[e - n], coeffs_[i], q);
        }
    } else {
        // Evaluation points are psi^(2j+1); sigma_k(f)(psi^(2j+1)) =
        // f(psi^((2j+1)k)) — a pure index permutation.
        for (u64 j = 0; j < n; ++j) {
            const u64 src =
                ((static_cast<u128>(2 * j + 1) * k) % twoN - 1) / 2;
            out.coeffs_[j] = coeffs_[src];
        }
    }
    return out;
}

Poly
Poly::mulByMonomial(i64 r) const
{
    UFC_CHECK(form_ == PolyForm::Coeff,
              "monomial rotation requires Coeff form");
    const i64 twoN = static_cast<i64>(2 * degree());
    i64 rr = r % twoN;
    if (rr < 0)
        rr += twoN;
    const u64 n = degree();
    const u64 q = modulus();
    Poly out(table_, form_);
    for (u64 i = 0; i < n; ++i) {
        u64 e = i + static_cast<u64>(rr);
        bool negate = false;
        if (e >= 2 * n)
            e -= 2 * n;
        if (e >= n) {
            e -= n;
            negate = true;
        }
        out.coeffs_[e] = negate ? negMod(coeffs_[i], q) : coeffs_[i];
    }
    return out;
}

void
Poly::sampleUniform(Rng &rng)
{
    const u64 q = modulus();
    for (auto &c : coeffs_)
        c = rng.uniform(q);
}

void
Poly::sampleTernary(Rng &rng)
{
    const u64 q = modulus();
    for (auto &c : coeffs_)
        c = rng.ternary(q);
}

void
Poly::sampleGaussian(Rng &rng, double sigma)
{
    const u64 q = modulus();
    for (auto &c : coeffs_)
        c = rng.gaussianMod(sigma, q);
}

Poly
negacyclicMul(const Poly &a, const Poly &b)
{
    Poly fa = a;
    Poly fb = b;
    fa.toEval();
    fb.toEval();
    fa.mulEvalInPlace(fb);
    return fa;
}

} // namespace ufc
