/**
 * @file
 * Balanced gadget decomposition implementation.
 */

#include "math/gadget.h"

#include "common/check.h"

namespace ufc {

Gadget::Gadget(u64 q, int logBase, int levels)
    : mod_(q), logBase_(logBase), levels_(levels)
{
    UFC_CHECK(logBase >= 1 && levels >= 1, "bad gadget parameters");
    UFC_CHECK(logBase * levels <= 62, "gadget precision too large");
    g_.resize(levels);
    // g_i = round(q / B^(i+1)), computed as scaled division.
    for (int i = 0; i < levels; ++i) {
        const u128 denom = static_cast<u128>(1)
            << (logBase_ * (i + 1));
        g_[i] = static_cast<u64>((static_cast<u128>(q) + denom / 2) / denom);
    }
}

void
Gadget::decompose(u64 x, u64 *digits) const
{
    const u64 q = mod_.value();
    const u64 b = base();
    const u64 halfB = b >> 1;
    const int total = logBase_ * levels_;

    // Scale x to a fixed-point value with logBase*levels fractional bits of
    // q: xHat = round(x * B^l / q).
    u128 num = (static_cast<u128>(x) << total) + q / 2;
    u64 xHat = static_cast<u64>(num / q);

    // Extract balanced digits least-significant first with carry
    // propagation; digit k (LSB side) pairs with g_{l-1-k}.
    u64 carry = 0;
    for (int k = 0; k < levels_; ++k) {
        const u64 d = (xHat & (b - 1)) + carry;
        xHat >>= logBase_;
        if (d >= halfB) {
            // Balanced: digits in [B/2, B] represent d - B, carry one up.
            digits[levels_ - 1 - k] = mod_.sub(0, b - d);
            carry = 1;
        } else {
            digits[levels_ - 1 - k] = mod_.reduce(d);
            carry = 0;
        }
    }
    // A final carry folds into nothing: it corresponds to a multiple of q
    // (up to the rounding error the gadget tolerates).
}

u64
Gadget::recompose(const u64 *digits) const
{
    u64 acc = 0;
    for (int i = 0; i < levels_; ++i)
        acc = mod_.add(acc, mod_.mul(digits[i], g_[i]));
    return acc;
}

} // namespace ufc
