/**
 * @file
 * NTT table cache implementation.
 */

#include "math/ntt_cache.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace ufc {

namespace {

struct Cache
{
    std::mutex mu;
    // unique_ptr values keep table addresses stable across rehash-free
    // map growth; the map itself is never erased from.
    std::map<std::tuple<u64, u64, u64>, std::unique_ptr<NttTable>> tables;
};

Cache &
cache()
{
    static Cache *c = new Cache; // leaked: tables outlive static teardown
    return *c;
}

} // namespace

const NttTable *
cachedNttTable(u64 n, u64 q, u64 psi)
{
    Cache &c = cache();
    const auto key = std::make_tuple(n, q, psi);
    {
        std::lock_guard<std::mutex> lk(c.mu);
        auto it = c.tables.find(key);
        if (it != c.tables.end())
            return it->second.get();
    }
    // Build outside the lock so concurrent misses on different keys
    // construct in parallel; a racing duplicate build of the same key
    // loses the emplace and is discarded.
    auto table = std::make_unique<NttTable>(n, q, psi);
    std::lock_guard<std::mutex> lk(c.mu);
    auto [it, inserted] = c.tables.emplace(key, std::move(table));
    (void)inserted;
    return it->second.get();
}

std::size_t
nttCacheSize()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lk(c.mu);
    return c.tables.size();
}

} // namespace ufc
