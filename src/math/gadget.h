/**
 * @file
 * Gadget (digit) decomposition.
 *
 * TFHE external products and key switching decompose ciphertext elements
 * w.r.t. a gadget vector g = (q/B, q/B^2, ..., q/B^l) so that
 * sum_i d_i * g_i ≈ x with |d_i| <= B/2 (signed, balanced digits).  This is
 * the Decomp primitive of paper Table I.
 */

#ifndef UFC_MATH_GADGET_H
#define UFC_MATH_GADGET_H

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace ufc {

/** Balanced base-B digit decomposition over Z_q. */
class Gadget
{
  public:
    /**
     * @param q       ciphertext modulus
     * @param logBase log2 of the decomposition base B
     * @param levels  number of digits l
     */
    Gadget(u64 q, int logBase, int levels);

    int levels() const { return levels_; }
    int logBase() const { return logBase_; }
    u64 base() const { return 1ULL << logBase_; }

    /** The gadget element g_i = round(q / B^(i+1)). */
    u64 g(int i) const { return g_[i]; }

    /**
     * Decompose x in [0, q) into `levels` balanced digits d_i (returned
     * mod q) with sum_i d_i * g_i ≈ x; the approximation error is at most
     * g_{l-1}/2 in absolute value.
     */
    void decompose(u64 x, u64 *digits) const;

    /** Recompose digits back; useful for tests. */
    u64 recompose(const u64 *digits) const;

  private:
    Modulus mod_;
    int logBase_ = 0;
    int levels_ = 0;
    std::vector<u64> g_;
};

} // namespace ufc

#endif // UFC_MATH_GADGET_H
