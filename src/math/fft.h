/**
 * @file
 * Double-precision complex FFT.
 *
 * Used by the CKKS canonical-embedding encoder and by the Strix baseline
 * model (Strix computes TFHE polynomial products with 64-bit FFT units,
 * paper Section VII-D).
 */

#ifndef UFC_MATH_FFT_H
#define UFC_MATH_FFT_H

#include <complex>
#include <vector>

#include "common/types.h"

namespace ufc {

using cplx = std::complex<double>;

/**
 * Radix-2 iterative FFT on a power-of-two-sized vector.
 * inverse == true applies conjugate twiddles and the 1/N scale.
 */
void fft(std::vector<cplx> &a, bool inverse);

/**
 * Negacyclic convolution of two real-coefficient polynomials of degree n
 * (mod X^n + 1) computed through the complex FFT, the way Strix-style
 * FFT-based TFHE accelerators evaluate external products.  Coefficients are
 * returned rounded to the nearest integer (double-precision accuracy).
 */
std::vector<double> negacyclicFftMul(const std::vector<double> &a,
                                     const std::vector<double> &b);

} // namespace ufc

#endif // UFC_MATH_FFT_H
