/**
 * @file
 * Word-size modular arithmetic.
 *
 * All FHE coefficient math in this repo runs over word-size RNS moduli
 * (q < 2^60).  The Modulus class packages a modulus together with the
 * precomputation needed for fast reduction:
 *   - generic multiplication via 128-bit products,
 *   - Shoup multiplication for multiply-by-known-constant (the hot path of
 *     NTT butterflies, matching the optimized modular multipliers the paper's
 *     hardware uses).
 */

#ifndef UFC_MATH_MOD_ARITH_H
#define UFC_MATH_MOD_ARITH_H

#include "common/check.h"
#include "common/types.h"

namespace ufc {

/** Modular addition; a and b must already be in [0, q). */
inline u64
addMod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/** Modular subtraction; a and b must already be in [0, q). */
inline u64
subMod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/** Modular negation; a must be in [0, q). */
inline u64
negMod(u64 a, u64 q)
{
    return a == 0 ? 0 : q - a;
}

/** Full modular multiplication through a 128-bit product. */
inline u64
mulMod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

/** Modular exponentiation by squaring. */
inline u64
powMod(u64 base, u64 exp, u64 q)
{
    u64 result = 1 % q;
    u64 acc = base % q;
    while (exp) {
        if (exp & 1)
            result = mulMod(result, acc, q);
        acc = mulMod(acc, acc, q);
        exp >>= 1;
    }
    return result;
}

/**
 * Modular inverse via the extended Euclidean algorithm.
 * Panics if gcd(a, q) != 1.
 */
inline u64
invMod(u64 a, u64 q)
{
    i64 t = 0, newT = 1;
    i64 r = static_cast<i64>(q), newR = static_cast<i64>(a % q);
    while (newR != 0) {
        i64 quot = r / newR;
        i64 tmp = t - quot * newT;
        t = newT;
        newT = tmp;
        tmp = r - quot * newR;
        r = newR;
        newR = tmp;
    }
    UFC_CHECK(r == 1, "invMod: value " << a << " not invertible mod " << q);
    if (t < 0)
        t += static_cast<i64>(q);
    return static_cast<u64>(t);
}

/**
 * A word-size modulus with reduction precomputation.
 *
 * Supports moduli up to 2^60 - 1.  Shoup multiplication multiplies by a
 * constant w given the precomputed w' = floor(w * 2^64 / q); the result is
 * exact for operands in [0, q).
 */
class Modulus
{
  public:
    Modulus() = default;

    explicit Modulus(u64 q) : q_(q)
    {
        UFC_CHECK(q >= 2 && q < (1ULL << 60), "modulus out of range: " << q);
        // floor(2^128 / q) as two 64-bit words, for Barrett reduction of
        // 128-bit values.
        u128 numer = ~static_cast<u128>(0);
        u128 ratio = numer / q_;
        ratioHi_ = static_cast<u64>(ratio >> 64);
        ratioLo_ = static_cast<u64>(ratio);
    }

    u64 value() const { return q_; }
    explicit operator u64() const { return q_; }

    u64 add(u64 a, u64 b) const { return addMod(a, b, q_); }
    u64 sub(u64 a, u64 b) const { return subMod(a, b, q_); }
    u64 neg(u64 a) const { return negMod(a, q_); }
    u64 mul(u64 a, u64 b) const { return reduce(static_cast<u128>(a) * b); }
    u64 pow(u64 b, u64 e) const { return powMod(b, e, q_); }
    u64 inv(u64 a) const { return invMod(a, q_); }

    /** Reduce an arbitrary 64-bit value into [0, q). */
    u64 reduce(u64 a) const { return a % q_; }

    /** Barrett reduction of a 128-bit value into [0, q). */
    u64
    reduce(u128 x) const
    {
        // tmp = floor(x / 2^64) * ratioLo + x * ratioHi, keeping the high
        // words; standard 128-bit Barrett as in SEAL.
        u64 xLo = static_cast<u64>(x);
        u64 xHi = static_cast<u64>(x >> 64);

        u128 t1 = static_cast<u128>(xLo) * ratioLo_;
        u128 t2 = static_cast<u128>(xLo) * ratioHi_;
        u128 t3 = static_cast<u128>(xHi) * ratioLo_;
        u128 t4 = static_cast<u128>(xHi) * ratioHi_;

        u128 mid = t2 + t3 + (t1 >> 64);
        u64 quot = static_cast<u64>(t4 + (mid >> 64));

        u64 r = xLo - quot * q_;
        // One conditional correction suffices for q < 2^60.
        while (r >= q_)
            r -= q_;
        return r;
    }

    /** Precompute the Shoup constant for multiply-by-w. */
    u64
    shoupPrecompute(u64 w) const
    {
        return static_cast<u64>((static_cast<u128>(w) << 64) / q_);
    }

    /** Multiply a by constant w using its Shoup precomputation wShoup. */
    u64
    mulShoup(u64 a, u64 w, u64 wShoup) const
    {
        u64 approx = static_cast<u64>(
            (static_cast<u128>(a) * wShoup) >> 64);
        u64 r = a * w - approx * q_;
        return r >= q_ ? r - q_ : r;
    }

  private:
    u64 q_ = 0;
    u64 ratioHi_ = 0;
    u64 ratioLo_ = 0;
};

} // namespace ufc

#endif // UFC_MATH_MOD_ARITH_H
