/**
 * @file
 * Word-size modular arithmetic.
 *
 * All FHE coefficient math in this repo runs over word-size RNS moduli
 * (q < 2^60).  The Modulus class packages a modulus together with the
 * precomputation needed for fast reduction:
 *   - Barrett reduction of 64- and 128-bit values (no hardware divide on
 *     any hot path),
 *   - Shoup multiplication for multiply-by-known-constant (the hot path of
 *     NTT butterflies, matching the optimized modular multipliers the
 *     paper's hardware uses), in both exact and lazy (result < 2q) forms,
 *   - Montgomery multiplication (REDC) for odd moduli, used where a chain
 *     of data x data products amortizes the domain conversion.
 *
 * ## Lazy-reduction invariants (Harvey butterflies)
 *
 * The NTT kernels in math/ntt.cpp keep coefficients in a redundant
 * representation between butterfly stages:
 *   - forward (Cooley-Tukey) values live in [0, 4q),
 *   - inverse (Gentleman-Sande) values live in [0, 2q),
 * and only the final pass renormalizes to [0, q).  mulShoupLazy is the
 * primitive that makes this sound: for w < q and ANY 64-bit a it returns
 * a value congruent to a*w that is < 2q, with no conditional correction.
 * The 4q forward bound therefore requires 4q < 2^64; all moduli here
 * satisfy the far stricter q < 2^60.
 */

#ifndef UFC_MATH_MOD_ARITH_H
#define UFC_MATH_MOD_ARITH_H

#include "common/check.h"
#include "common/types.h"

namespace ufc {

/** Modular addition; a and b must already be in [0, q). */
inline u64
addMod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/** Modular subtraction; a and b must already be in [0, q). */
inline u64
subMod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/** Modular negation; a must be in [0, q). */
inline u64
negMod(u64 a, u64 q)
{
    return a == 0 ? 0 : q - a;
}

/** Full modular multiplication through a 128-bit product. */
inline u64
mulMod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

/** Modular exponentiation by squaring. */
inline u64
powMod(u64 base, u64 exp, u64 q)
{
    u64 result = 1 % q;
    u64 acc = base % q;
    while (exp) {
        if (exp & 1)
            result = mulMod(result, acc, q);
        acc = mulMod(acc, acc, q);
        exp >>= 1;
    }
    return result;
}

/**
 * Modular inverse via the extended Euclidean algorithm.
 * Panics if gcd(a, q) != 1.
 */
inline u64
invMod(u64 a, u64 q)
{
    i64 t = 0, newT = 1;
    i64 r = static_cast<i64>(q), newR = static_cast<i64>(a % q);
    while (newR != 0) {
        i64 quot = r / newR;
        i64 tmp = t - quot * newT;
        t = newT;
        newT = tmp;
        tmp = r - quot * newR;
        r = newR;
        newR = tmp;
    }
    UFC_CHECK(r == 1, "invMod: value " << a << " not invertible mod " << q);
    if (t < 0)
        t += static_cast<i64>(q);
    return static_cast<u64>(t);
}

/**
 * A word-size modulus with reduction precomputation.
 *
 * Supports moduli up to 2^60 - 1.  Shoup multiplication multiplies by a
 * constant w given the precomputed w' = floor(w * 2^64 / q); the result is
 * exact for operands in [0, q), and < 2q for arbitrary 64-bit operands in
 * the lazy form.
 */
class Modulus
{
  public:
    /** Largest supported modulus bit width. */
    static constexpr int kMaxBits = 60;

    Modulus() = default;

    explicit Modulus(u64 q) : q_(q)
    {
        UFC_CHECK(q >= 2 && q < (1ULL << kMaxBits),
                  "modulus out of range: " << q);
        // floor(2^128 / q) as two 64-bit words, for Barrett reduction of
        // 128-bit values.
        u128 numer = ~static_cast<u128>(0);
        u128 ratio = numer / q_;
        ratioHi_ = static_cast<u64>(ratio >> 64);
        ratioLo_ = static_cast<u64>(ratio);
        // Montgomery constants exist only for odd q (every NTT prime is
        // odd; q = 2^k is the one even case the ctor accepts).
        if (q & 1) {
            // -q^{-1} mod 2^64 by Newton iteration: x_{k+1} = x_k(2 - q x_k)
            // doubles the number of correct low bits each step.
            u64 inv = q;
            for (int i = 0; i < 5; ++i)
                inv *= 2 - q * inv;
            montQInvNeg_ = 0 - inv;
            montR_ = static_cast<u64>((static_cast<u128>(1) << 64) % q);
            montR2_ = mulMod(montR_, montR_, q);
        }
    }

    u64 value() const { return q_; }
    explicit operator u64() const { return q_; }

    u64 add(u64 a, u64 b) const { return addMod(a, b, q_); }
    u64 sub(u64 a, u64 b) const { return subMod(a, b, q_); }
    u64 neg(u64 a) const { return negMod(a, q_); }
    u64 mul(u64 a, u64 b) const { return reduce(static_cast<u128>(a) * b); }
    u64 pow(u64 b, u64 e) const { return powMod(b, e, q_); }
    u64 inv(u64 a) const { return invMod(a, q_); }

    /** Barrett reduction of an arbitrary 64-bit value into [0, q). */
    u64
    reduce(u64 a) const
    {
        // One-word Barrett using only the high ratio word
        // (floor(2^64/q), up to 2 ulp low): the estimated quotient
        // undershoots floor(a/q) by at most a small constant, fixed up
        // by the correction loop.
        u64 quot = static_cast<u64>(
            (static_cast<u128>(a) * ratioHi_) >> 64);
        u64 r = a - quot * q_;
        while (r >= q_)
            r -= q_;
        return r;
    }

    /** Barrett reduction of a 128-bit value into [0, q). */
    u64
    reduce(u128 x) const
    {
        // tmp = floor(x / 2^64) * ratioLo + x * ratioHi, keeping the high
        // words; standard 128-bit Barrett as in SEAL.
        u64 xLo = static_cast<u64>(x);
        u64 xHi = static_cast<u64>(x >> 64);

        u128 t1 = static_cast<u128>(xLo) * ratioLo_;
        u128 t2 = static_cast<u128>(xLo) * ratioHi_;
        u128 t3 = static_cast<u128>(xHi) * ratioLo_;
        u128 t4 = static_cast<u128>(xHi) * ratioHi_;

        u128 mid = t2 + t3 + (t1 >> 64);
        u64 quot = static_cast<u64>(t4 + (mid >> 64));

        u64 r = xLo - quot * q_;
        // One conditional correction suffices for q < 2^60.
        while (r >= q_)
            r -= q_;
        return r;
    }

    /** Precompute the Shoup constant w' = floor(w * 2^64 / q). */
    u64
    shoupPrecompute(u64 w) const
    {
        return static_cast<u64>((static_cast<u128>(w) << 64) / q_);
    }

    /**
     * 52-bit Shoup constant floor(w * 2^52 / q) for the AVX-512 IFMA
     * butterfly kernels (which compute 52x52-bit products); meaningful
     * for q < 2^50 only.
     */
    u64
    shoupPrecompute52(u64 w) const
    {
        return static_cast<u64>((static_cast<u128>(w) << 52) / q_);
    }

    /** Multiply a by constant w using its Shoup precomputation wShoup.
     *  Exact: a must be in [0, q)... in fact any a works because the lazy
     *  form is < 2q and one correction is applied. */
    u64
    mulShoup(u64 a, u64 w, u64 wShoup) const
    {
        u64 r = mulShoupLazy(a, w, wShoup);
        return r >= q_ ? r - q_ : r;
    }

    /**
     * Lazy Shoup multiplication: returns a*w mod q plus 0 or q (i.e. a
     * value in [0, 2q)), for w < q and ANY 64-bit a.  The workhorse of
     * the Harvey NTT butterflies; see the file comment for the
     * invariants built on it.
     */
    u64
    mulShoupLazy(u64 a, u64 w, u64 wShoup) const
    {
        u64 approx = static_cast<u64>(
            (static_cast<u128>(a) * wShoup) >> 64);
        return a * w - approx * q_;
    }

    // ---- Montgomery arithmetic (odd q only) ----

    /** True when Montgomery helpers are available (q odd). */
    bool hasMontgomery() const { return montQInvNeg_ != 0; }

    /** R mod q with R = 2^64 (the Montgomery representation of 1). */
    u64 montOne() const { return montR_; }

    /** Map a (in [0, q)) into the Montgomery domain: a * R mod q. */
    u64 toMont(u64 a) const { return redc(static_cast<u128>(a) * montR2_); }

    /** Map out of the Montgomery domain: a * R^{-1} mod q. */
    u64 fromMont(u64 a) const { return redc(static_cast<u128>(a)); }

    /** Product of two Montgomery-domain values, in the domain. */
    u64
    mulMont(u64 a, u64 b) const
    {
        return redc(static_cast<u128>(a) * b);
    }

    /**
     * Montgomery reduction: T * R^{-1} mod q for T < q * 2^64.
     * Requires q odd.
     */
    u64
    redc(u128 t) const
    {
        u64 m = static_cast<u64>(t) * montQInvNeg_;
        u64 r = static_cast<u64>(
            (t + static_cast<u128>(m) * q_) >> 64);
        return r >= q_ ? r - q_ : r;
    }

  private:
    u64 q_ = 0;
    u64 ratioHi_ = 0;
    u64 ratioLo_ = 0;
    u64 montQInvNeg_ = 0; ///< -q^{-1} mod 2^64; 0 when q is even
    u64 montR_ = 0;       ///< 2^64 mod q
    u64 montR2_ = 0;      ///< 2^128 mod q
};

} // namespace ufc

#endif // UFC_MATH_MOD_ARITH_H
