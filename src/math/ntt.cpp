/**
 * @file
 * Iterative negacyclic NTT implementation.
 */

#include "math/ntt.h"

#include <bit>

#include "common/check.h"
#include "math/primes.h"

namespace ufc {

NttTable::NttTable(u64 n, u64 q, u64 psi)
    : n_(n), mod_(q)
{
    UFC_CHECK(n >= 2 && std::has_single_bit(n), "NTT degree must be 2^k");
    UFC_CHECK((q - 1) % (2 * n) == 0,
              "q=" << q << " is not NTT-friendly for n=" << n);
    logN_ = std::countr_zero(n);

    psi_ = psi ? psi : findPrimitiveRoot(2 * n, q);
    UFC_CHECK(powMod(psi_, n, q) == q - 1, "psi^N must equal -1 mod q");
    const u64 psiInv = invMod(psi_, q);

    fwdTw_.resize(n);
    fwdTwShoup_.resize(n);
    invTw_.resize(n);
    invTwShoup_.resize(n);
    for (u64 i = 0; i < n; ++i) {
        const u64 rev = bitReverse(static_cast<u32>(i), logN_);
        fwdTw_[i] = powMod(psi_, rev, q);
        fwdTwShoup_[i] = mod_.shoupPrecompute(fwdTw_[i]);
        invTw_[i] = powMod(psiInv, rev, q);
        invTwShoup_[i] = mod_.shoupPrecompute(invTw_[i]);
    }
    nInv_ = invMod(n % q, q);
    nInvShoup_ = mod_.shoupPrecompute(nInv_);
}

void
NttTable::forward(u64 *a) const
{
    const u64 q = mod_.value();
    // Cooley-Tukey, natural order in, bit-reversed order out.
    u64 t = n_;
    for (u64 m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (u64 i = 0; i < m; ++i) {
            const u64 j1 = 2 * i * t;
            const u64 w = fwdTw_[m + i];
            const u64 wShoup = fwdTwShoup_[m + i];
            for (u64 j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = mod_.mulShoup(a[j + t], w, wShoup);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
    // Restore natural order.
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = bitReverse(static_cast<u32>(i), logN_);
        if (r > i)
            std::swap(a[i], a[r]);
    }
}

void
NttTable::inverse(u64 *a) const
{
    const u64 q = mod_.value();
    // To bit-reversed order, then Gentleman-Sande back to natural order.
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = bitReverse(static_cast<u32>(i), logN_);
        if (r > i)
            std::swap(a[i], a[r]);
    }
    u64 t = 1;
    for (u64 m = n_; m > 1; m >>= 1) {
        const u64 h = m >> 1;
        u64 j1 = 0;
        for (u64 i = 0; i < h; ++i) {
            const u64 w = invTw_[h + i];
            const u64 wShoup = invTwShoup_[h + i];
            for (u64 j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = mod_.mulShoup(subMod(u, v, q), w, wShoup);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (u64 i = 0; i < n_; ++i)
        a[i] = mod_.mulShoup(a[i], nInv_, nInvShoup_);
}

std::vector<u64>
NttTable::negacyclicMulSchoolbook(const std::vector<u64> &a,
                                  const std::vector<u64> &b) const
{
    const u64 q = mod_.value();
    std::vector<u64> c(n_, 0);
    for (u64 i = 0; i < n_; ++i) {
        if (a[i] == 0)
            continue;
        for (u64 j = 0; j < n_; ++j) {
            const u64 p = mulMod(a[i], b[j], q);
            const u64 k = i + j;
            if (k < n_)
                c[k] = addMod(c[k], p, q);
            else
                c[k - n_] = subMod(c[k - n_], p, q);
        }
    }
    return c;
}

} // namespace ufc
