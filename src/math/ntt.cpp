/**
 * @file
 * Iterative negacyclic NTT implementation: table construction, scalar
 * Harvey lazy-reduction kernels, reference kernels, and dispatch to the
 * AVX-512 IFMA kernels in math/ntt_avx512.cpp.
 */

#include "math/ntt.h"

#include <bit>

#include "common/check.h"
#include "common/prof.h"
#include "math/primes.h"

namespace ufc {

namespace {

/**
 * Per-thread transform scratch.  The lazy kernels run their butterfly
 * stages out-of-place into this buffer so the final pass can fuse the
 * bit-reversal permutation (a gather, much faster than the pairwise
 * swap walk) with renormalization.  thread_local keeps concurrent
 * limb-parallel transforms from sharing it.
 */
thread_local std::vector<u64> tlsScratch;

u64 *
scratchBuf(u64 n)
{
    if (tlsScratch.size() < n)
        tlsScratch.resize(n);
    return tlsScratch.data();
}

} // namespace

NttTable::NttTable(u64 n, u64 q, u64 psi)
    : n_(n), mod_(q)
{
    UFC_CHECK(n >= 2 && std::has_single_bit(n), "NTT degree must be 2^k");
    UFC_CHECK((q - 1) % (2 * n) == 0,
              "q=" << q << " is not NTT-friendly for n=" << n);
    logN_ = std::countr_zero(n);

    psi_ = psi ? psi : findPrimitiveRoot(2 * n, q);
    UFC_CHECK(powMod(psi_, n, q) == q - 1, "psi^N must equal -1 mod q");
    const u64 psiInv = invMod(psi_, q);

    fwdTw_.resize(n);
    fwdTwShoup_.resize(n);
    invTw_.resize(n);
    invTwShoup_.resize(n);
    brev_.resize(n);
    const bool smallQ = q < kIfmaModulusBound;
    if (smallQ) {
        fwdTwShoup52_.resize(n);
        invTwShoup52_.resize(n);
    }
    for (u64 i = 0; i < n; ++i) {
        const u64 rev = bitReverse(static_cast<u32>(i), logN_);
        brev_[i] = static_cast<u32>(rev);
        fwdTw_[i] = powMod(psi_, rev, q);
        fwdTwShoup_[i] = mod_.shoupPrecompute(fwdTw_[i]);
        invTw_[i] = powMod(psiInv, rev, q);
        invTwShoup_[i] = mod_.shoupPrecompute(invTw_[i]);
        if (smallQ) {
            fwdTwShoup52_[i] = mod_.shoupPrecompute52(fwdTw_[i]);
            invTwShoup52_[i] = mod_.shoupPrecompute52(invTw_[i]);
        }
    }
    nInv_ = invMod(n % q, q);
    nInvShoup_ = mod_.shoupPrecompute(nInv_);
    if (smallQ)
        nInvShoup52_ = mod_.shoupPrecompute52(nInv_);

    useIfma_ = smallQ && n >= 16 && detail::avx512IfmaAvailable();
    view_.n = n_;
    view_.logN = logN_;
    view_.q = q;
    view_.fwdTw = fwdTw_.data();
    view_.fwdTwShoup52 = smallQ ? fwdTwShoup52_.data() : nullptr;
    view_.invTw = invTw_.data();
    view_.invTwShoup52 = smallQ ? invTwShoup52_.data() : nullptr;
    view_.brev = brev_.data();
    view_.nInv = nInv_;
    view_.nInvShoup52 = nInvShoup52_;
}

void
NttTable::forward(u64 *a) const
{
    UFC_PROF_SCOPE("ntt.forward");
    if (useIfma_)
        detail::ifmaForward(view_, a, scratchBuf(n_));
    else
        forwardScalar(a);
}

void
NttTable::inverse(u64 *a) const
{
    UFC_PROF_SCOPE("ntt.inverse");
    if (useIfma_)
        detail::ifmaInverse(view_, a, scratchBuf(n_));
    else
        inverseScalar(a);
}

void
NttTable::forwardScalar(u64 *a) const
{
    // Cooley-Tukey with Harvey lazy reduction: butterfly inputs stay in
    // [0, 4q), renormalized only by the final permutation pass.  The
    // first stage reads the input array and writes the scratch buffer;
    // the rest run in scratch, so the output pass can gather back into
    // `a` in natural order instead of doing the pairwise swap walk.
    const u64 q = mod_.value();
    const u64 twoQ = 2 * q;
    u64 *buf = scratchBuf(n_);

    u64 t = n_ >> 1;
    {
        // m = 1, out-of-place a -> buf.
        const u64 w = fwdTw_[1];
        const u64 wShoup = fwdTwShoup_[1];
        for (u64 j = 0; j < t; ++j) {
            const u64 x = a[j]; // input < q, already reduced
            const u64 v = mod_.mulShoupLazy(a[j + t], w, wShoup);
            buf[j] = x + v;
            buf[j + t] = x - v + twoQ;
        }
    }
    t >>= 1;
    for (u64 m = 2; m < n_; m <<= 1, t >>= 1) {
        for (u64 i = 0; i < m; ++i) {
            const u64 j1 = 2 * i * t;
            const u64 w = fwdTw_[m + i];
            const u64 wShoup = fwdTwShoup_[m + i];
            u64 *x = buf + j1;
            u64 *y = x + t;
            for (u64 j = 0; j < t; ++j) {
                u64 u = x[j];
                if (u >= twoQ)
                    u -= twoQ; // keep < 2q so u + v < 4q
                const u64 v = mod_.mulShoupLazy(y[j], w, wShoup);
                x[j] = u + v;
                y[j] = u - v + twoQ;
            }
        }
    }
    // Gather back to natural order, renormalizing [0, 4q) -> [0, q).
    for (u64 i = 0; i < n_; ++i) {
        u64 r = buf[brev_[i]];
        if (r >= twoQ)
            r -= twoQ;
        if (r >= q)
            r -= q;
        a[i] = r;
    }
}

void
NttTable::inverseScalar(u64 *a) const
{
    // Gather into bit-reversed order, Gentleman-Sande with values held
    // in [0, 2q), then the n^{-1} scale renormalizes while copying back.
    const u64 q = mod_.value();
    const u64 twoQ = 2 * q;
    u64 *buf = scratchBuf(n_);

    for (u64 i = 0; i < n_; ++i)
        buf[i] = a[brev_[i]];

    u64 t = 1;
    for (u64 m = n_; m > 1; m >>= 1, t <<= 1) {
        const u64 h = m >> 1;
        u64 j1 = 0;
        for (u64 i = 0; i < h; ++i) {
            const u64 w = invTw_[h + i];
            const u64 wShoup = invTwShoup_[h + i];
            u64 *x = buf + j1;
            u64 *y = x + t;
            for (u64 j = 0; j < t; ++j) {
                const u64 u = x[j];
                const u64 v = y[j];
                u64 s = u + v; // < 4q
                if (s >= twoQ)
                    s -= twoQ;
                x[j] = s;
                y[j] = mod_.mulShoupLazy(u - v + twoQ, w, wShoup);
            }
            j1 += 2 * t;
        }
    }
    for (u64 i = 0; i < n_; ++i)
        a[i] = mod_.mulShoup(buf[i], nInv_, nInvShoup_);
}

void
NttTable::forwardReference(u64 *a) const
{
    const u64 q = mod_.value();
    // Cooley-Tukey, natural order in, bit-reversed order out.
    u64 t = n_;
    for (u64 m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (u64 i = 0; i < m; ++i) {
            const u64 j1 = 2 * i * t;
            const u64 w = fwdTw_[m + i];
            const u64 wShoup = fwdTwShoup_[m + i];
            for (u64 j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = mod_.mulShoup(a[j + t], w, wShoup);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
    // Restore natural order.
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = brev_[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
}

void
NttTable::inverseReference(u64 *a) const
{
    const u64 q = mod_.value();
    // To bit-reversed order, then Gentleman-Sande back to natural order.
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = brev_[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
    u64 t = 1;
    for (u64 m = n_; m > 1; m >>= 1) {
        const u64 h = m >> 1;
        u64 j1 = 0;
        for (u64 i = 0; i < h; ++i) {
            const u64 w = invTw_[h + i];
            const u64 wShoup = invTwShoup_[h + i];
            for (u64 j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = mod_.mulShoup(subMod(u, v, q), w, wShoup);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (u64 i = 0; i < n_; ++i)
        a[i] = mod_.mulShoup(a[i], nInv_, nInvShoup_);
}

std::vector<u64>
NttTable::negacyclicMulSchoolbook(const std::vector<u64> &a,
                                  const std::vector<u64> &b) const
{
    const u64 q = mod_.value();
    std::vector<u64> c(n_, 0);
    for (u64 i = 0; i < n_; ++i) {
        if (a[i] == 0)
            continue;
        for (u64 j = 0; j < n_; ++j) {
            const u64 p = mulMod(a[i], b[j], q);
            const u64 k = i + j;
            if (k < n_)
                c[k] = addMod(c[k], p, q);
            else
                c[k - n_] = subMod(c[k - n_], p, q);
        }
    }
    return c;
}

} // namespace ufc
