/**
 * @file
 * AVX-512 IFMA NTT butterfly kernels (Intel HEXL technique).
 *
 * This translation unit is compiled with AVX-512 IFMA code generation
 * enabled (see src/CMakeLists.txt) and must only be entered after a
 * runtime avx512IfmaAvailable() check.  On toolchains without AVX-512
 * support the kernels compile to aborting stubs that the dispatcher in
 * ntt.cpp never reaches.
 *
 * The kernels use 52-bit Shoup multiplication built on the IFMA
 * instructions _mm512_madd52{hi,lo}_epu64, which compute the high/low
 * halves of a 52x52-bit product.  For w < q and any a < 2^52 the lazy
 * product a*w - floor(a*w'/2^52)*q with w' = floor(w*2^52/q) is < 2q,
 * so the Harvey invariants (forward values < 4q, inverse values < 2q)
 * hold as long as 4q < 2^52, i.e. q < 2^50 (NttTable::kIfmaModulusBound).
 *
 * Stage layout: stages whose butterfly span t is >= 8 use contiguous
 * 8-lane loads; the last three forward stages (t = 4, 2, 1) and the
 * first three inverse stages process 16-element chunks with cross-lane
 * permutes so every stage stays fully vectorized.  The final forward
 * stage and the inverse n^{-1} scale fold the renormalization to [0, q)
 * into branchless unsigned-min conditional subtracts, and the
 * bit-reversal permutation is a gather fused with the scratch-buffer
 * round trip.
 */

#include "math/ntt.h"

#include "common/check.h"

#if defined(__AVX512IFMA__) && defined(__AVX512F__) && defined(__AVX512DQ__)
#define UFC_HAVE_AVX512_NTT 1
#include <immintrin.h>
#endif

namespace ufc {
namespace detail {

bool
avx512IfmaAvailable()
{
#ifdef UFC_HAVE_AVX512_NTT
    static const bool ok = __builtin_cpu_supports("avx512ifma") &&
                           __builtin_cpu_supports("avx512f") &&
                           __builtin_cpu_supports("avx512dq");
    return ok;
#else
    return false;
#endif
}

#ifdef UFC_HAVE_AVX512_NTT

namespace {

/** Lazy 52-bit Shoup product: y*w - floor(y*wS/2^52)*q, < 2q, for
 *  y < 2^52 and w < q < 2^50. */
inline __m512i
mulShoupLazy52(__m512i y, __m512i w, __m512i wS, __m512i qv, __m512i mask52)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i qhat = _mm512_madd52hi_epu64(zero, y, wS);
    const __m512i lo = _mm512_madd52lo_epu64(zero, y, w);
    const __m512i lq = _mm512_madd52lo_epu64(zero, qhat, qv);
    return _mm512_and_si512(_mm512_sub_epi64(lo, lq), mask52);
}

/** x - 2q if x >= 2q else x, branchless (underflow makes x - 2q huge). */
inline __m512i
reduceTwoQ(__m512i x, __m512i twoQ)
{
    return _mm512_min_epu64(x, _mm512_sub_epi64(x, twoQ));
}

/**
 * Cross-lane permute indices for a stage with butterfly span t in
 * {1, 2, 4}, processing 16 consecutive elements (8 butterflies) per
 * iteration.  Butterfly b takes lanes u = (b/t)*2t + b%t and v = u + t
 * of the [A|B] pair; output lane p of each stored half selects from the
 * concatenated [xNew|yNew] registers; twiddle lane b uses the (b/t)-th
 * twiddle of the chunk.
 */
struct TailIndices
{
    __m512i u, v, lo, hi, tw;

    explicit TailIndices(u64 t)
    {
        alignas(64) long long uI[8], vI[8], loI[8], hiI[8], twI[8];
        for (u64 b = 0; b < 8; ++b) {
            uI[b] = static_cast<long long>((b / t) * 2 * t + b % t);
            vI[b] = uI[b] + static_cast<long long>(t);
            twI[b] = static_cast<long long>(b / t);
        }
        for (u64 p = 0; p < 16; ++p) {
            const u64 b = (p / (2 * t)) * t + (p % t);
            const long long sel =
                static_cast<long long>((p % (2 * t)) < t ? b : b + 8);
            (p < 8 ? loI[p] : hiI[p - 8]) = sel;
        }
        u = _mm512_load_si512(uI);
        v = _mm512_load_si512(vI);
        lo = _mm512_load_si512(loI);
        hi = _mm512_load_si512(hiI);
        tw = _mm512_load_si512(twI);
    }
};

} // namespace

void
ifmaForward(const NttKernelView &view, u64 *a, u64 *scratch)
{
    const u64 n = view.n;
    const u64 q = view.q;
    const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    const __m512i twoQ = _mm512_set1_epi64(static_cast<long long>(2 * q));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);

    // First stage (m = 1, t = n/2 >= 8): out-of-place a -> scratch, so
    // later stages run in scratch and the output gather lands back in a.
    u64 t = n >> 1;
    {
        const __m512i w = _mm512_set1_epi64(
            static_cast<long long>(view.fwdTw[1]));
        const __m512i wS = _mm512_set1_epi64(
            static_cast<long long>(view.fwdTwShoup52[1]));
        for (u64 j = 0; j < t; j += 8) {
            const __m512i xv = _mm512_loadu_si512(a + j);
            const __m512i yv = _mm512_loadu_si512(a + j + t);
            const __m512i tv = mulShoupLazy52(yv, w, wS, qv, mask52);
            _mm512_storeu_si512(scratch + j, _mm512_add_epi64(xv, tv));
            _mm512_storeu_si512(
                scratch + j + t,
                _mm512_add_epi64(_mm512_sub_epi64(xv, tv), twoQ));
        }
    }
    t >>= 1;

    // Middle stages with t >= 8: contiguous vector butterflies.
    u64 m = 2;
    for (; t >= 8; m <<= 1, t >>= 1) {
        for (u64 i = 0; i < m; ++i) {
            const __m512i w = _mm512_set1_epi64(
                static_cast<long long>(view.fwdTw[m + i]));
            const __m512i wS = _mm512_set1_epi64(
                static_cast<long long>(view.fwdTwShoup52[m + i]));
            u64 *x = scratch + 2 * i * t;
            u64 *y = x + t;
            for (u64 j = 0; j < t; j += 8) {
                __m512i xv = _mm512_loadu_si512(x + j);
                const __m512i yv = _mm512_loadu_si512(y + j);
                xv = reduceTwoQ(xv, twoQ);
                const __m512i tv = mulShoupLazy52(yv, w, wS, qv, mask52);
                _mm512_storeu_si512(x + j, _mm512_add_epi64(xv, tv));
                _mm512_storeu_si512(
                    y + j,
                    _mm512_add_epi64(_mm512_sub_epi64(xv, tv), twoQ));
            }
        }
    }

    // Tail stages t = 4, 2, 1 via cross-lane permutes; the t == 1 stage
    // fuses the full renormalization to [0, q).
    for (; t >= 1; m <<= 1, t >>= 1) {
        const TailIndices ix(t);
        const u64 perChunk = 8 / t; // distinct twiddles per 16 elements
        for (u64 g = 0; g < n / 16; ++g) {
            u64 *base = scratch + g * 16;
            const u64 twBase = m + g * perChunk;
            const __m512i w = _mm512_permutexvar_epi64(
                ix.tw, _mm512_loadu_si512(view.fwdTw + twBase));
            const __m512i wS = _mm512_permutexvar_epi64(
                ix.tw, _mm512_loadu_si512(view.fwdTwShoup52 + twBase));
            const __m512i A = _mm512_loadu_si512(base);
            const __m512i B = _mm512_loadu_si512(base + 8);
            __m512i xv = _mm512_permutex2var_epi64(A, ix.u, B);
            const __m512i yv = _mm512_permutex2var_epi64(A, ix.v, B);
            xv = reduceTwoQ(xv, twoQ);
            const __m512i tv = mulShoupLazy52(yv, w, wS, qv, mask52);
            __m512i xn = _mm512_add_epi64(xv, tv);
            __m512i yn = _mm512_add_epi64(_mm512_sub_epi64(xv, tv), twoQ);
            if (t == 1) {
                xn = _mm512_min_epu64(xn, _mm512_sub_epi64(xn, twoQ));
                xn = _mm512_min_epu64(xn, _mm512_sub_epi64(xn, qv));
                yn = _mm512_min_epu64(yn, _mm512_sub_epi64(yn, twoQ));
                yn = _mm512_min_epu64(yn, _mm512_sub_epi64(yn, qv));
            }
            _mm512_storeu_si512(base,
                                _mm512_permutex2var_epi64(xn, ix.lo, yn));
            _mm512_storeu_si512(base + 8,
                                _mm512_permutex2var_epi64(xn, ix.hi, yn));
        }
    }

    // Bit-reversal gather back into the caller's array (values already
    // fully reduced by the last stage).
    const u32 *brev = view.brev;
    for (u64 i = 0; i < n; ++i)
        a[i] = scratch[brev[i]];
}

void
ifmaInverse(const NttKernelView &view, u64 *a, u64 *scratch)
{
    const u64 n = view.n;
    const u64 q = view.q;
    const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    const __m512i twoQ = _mm512_set1_epi64(static_cast<long long>(2 * q));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);

    // Gather into bit-reversed order (inputs < q, so the Gentleman-Sande
    // < 2q invariant holds from the start).
    const u32 *brev = view.brev;
    for (u64 i = 0; i < n; ++i)
        scratch[i] = a[brev[i]];

    // First three stages t = 1, 2, 4 via cross-lane permutes.
    u64 t = 1;
    u64 h = n >> 1;
    for (; t <= 4; h >>= 1, t <<= 1) {
        const TailIndices ix(t);
        const u64 perChunk = 8 / t;
        for (u64 g = 0; g < n / 16; ++g) {
            u64 *base = scratch + g * 16;
            const u64 twBase = h + g * perChunk;
            const __m512i w = _mm512_permutexvar_epi64(
                ix.tw, _mm512_loadu_si512(view.invTw + twBase));
            const __m512i wS = _mm512_permutexvar_epi64(
                ix.tw, _mm512_loadu_si512(view.invTwShoup52 + twBase));
            const __m512i A = _mm512_loadu_si512(base);
            const __m512i B = _mm512_loadu_si512(base + 8);
            const __m512i xv = _mm512_permutex2var_epi64(A, ix.u, B);
            const __m512i yv = _mm512_permutex2var_epi64(A, ix.v, B);
            const __m512i xn = reduceTwoQ(_mm512_add_epi64(xv, yv), twoQ);
            const __m512i diff =
                _mm512_add_epi64(_mm512_sub_epi64(xv, yv), twoQ);
            const __m512i yn = mulShoupLazy52(diff, w, wS, qv, mask52);
            _mm512_storeu_si512(base,
                                _mm512_permutex2var_epi64(xn, ix.lo, yn));
            _mm512_storeu_si512(base + 8,
                                _mm512_permutex2var_epi64(xn, ix.hi, yn));
        }
    }

    // Remaining stages with t >= 8: contiguous vector butterflies.
    for (; h >= 1; h >>= 1, t <<= 1) {
        for (u64 i = 0; i < h; ++i) {
            const __m512i w = _mm512_set1_epi64(
                static_cast<long long>(view.invTw[h + i]));
            const __m512i wS = _mm512_set1_epi64(
                static_cast<long long>(view.invTwShoup52[h + i]));
            u64 *x = scratch + 2 * i * t;
            u64 *y = x + t;
            for (u64 j = 0; j < t; j += 8) {
                const __m512i xv = _mm512_loadu_si512(x + j);
                const __m512i yv = _mm512_loadu_si512(y + j);
                const __m512i xn =
                    reduceTwoQ(_mm512_add_epi64(xv, yv), twoQ);
                const __m512i diff =
                    _mm512_add_epi64(_mm512_sub_epi64(xv, yv), twoQ);
                const __m512i yn = mulShoupLazy52(diff, w, wS, qv, mask52);
                _mm512_storeu_si512(x + j, xn);
                _mm512_storeu_si512(y + j, yn);
            }
        }
    }

    // Scale by n^{-1} while copying back; one conditional subtract fully
    // reduces the < 2q lazy product.
    const __m512i nI = _mm512_set1_epi64(static_cast<long long>(view.nInv));
    const __m512i nIS =
        _mm512_set1_epi64(static_cast<long long>(view.nInvShoup52));
    for (u64 i = 0; i < n; i += 8) {
        const __m512i xv = _mm512_loadu_si512(scratch + i);
        __m512i r = mulShoupLazy52(xv, nI, nIS, qv, mask52);
        r = _mm512_min_epu64(r, _mm512_sub_epi64(r, qv));
        _mm512_storeu_si512(a + i, r);
    }
}

#else // !UFC_HAVE_AVX512_NTT

void
ifmaForward(const NttKernelView &view, u64 *a, u64 *scratch)
{
    (void)view;
    (void)a;
    (void)scratch;
    UFC_CHECK(false, "IFMA NTT kernel called without AVX-512 support");
}

void
ifmaInverse(const NttKernelView &view, u64 *a, u64 *scratch)
{
    (void)view;
    (void)a;
    (void)scratch;
    UFC_CHECK(false, "IFMA NTT kernel called without AVX-512 support");
}

#endif // UFC_HAVE_AVX512_NTT

} // namespace detail
} // namespace ufc
