/**
 * @file
 * Constant-geometry NTT implementation.
 *
 * Stage structure (forward, DIF): every stage reads element pairs
 * (x[j], x[j + N/2]) and writes (y[2j], y[2j + 1]) — the perfect shuffle —
 * with the stage-t twiddle for pair j equal to omega^(2^t * (j >> t)).
 * After log(N) identical stages the output is in bit-reversed order; this
 * implementation re-permutes to natural order to match NttTable's
 * convention (the hardware simply keeps the bit-reversed lane layout).
 *
 * Twiddles for the default root are fully precomputed per stage (value
 * plus Shoup constant), so the stage loops run multiply-free of any
 * division.  Automorphism transforms use an arbitrary root omega^k and
 * fall back to incremental Barrett-multiplied twiddles.
 */

#include "math/cg_ntt.h"

#include <bit>

#include "common/check.h"
#include "common/prof.h"
#include "math/ntt.h"
#include "math/ntt_cache.h"
#include "math/primes.h"

namespace ufc {

CgNtt::CgNtt(u64 n, u64 q, u64 psi)
    : n_(n), mod_(q)
{
    UFC_CHECK(n >= 2 && std::has_single_bit(n), "CG-NTT degree must be 2^k");
    UFC_CHECK((q - 1) % (2 * n) == 0,
              "q=" << q << " is not NTT-friendly for n=" << n);
    logN_ = std::countr_zero(n);

    psi_ = psi ? psi : findPrimitiveRoot(2 * n, q);
    UFC_CHECK(powMod(psi_, n, q) == q - 1, "psi^N must equal -1 mod q");
    psiInv_ = invMod(psi_, q);
    omega_ = mod_.mul(psi_, psi_);
    omegaInv_ = invMod(omega_, q);
    nInv_ = invMod(n % q, q);

    twist_.resize(n);
    twistShoup_.resize(n);
    untwist_.resize(n);
    untwistShoup_.resize(n);
    brev_.resize(n);
    u64 t = 1, u = nInv_;
    for (u64 j = 0; j < n; ++j) {
        brev_[j] = bitReverse(static_cast<u32>(j), logN_);
        twist_[j] = t;
        twistShoup_[j] = mod_.shoupPrecompute(t);
        untwist_[j] = u;
        untwistShoup_[j] = mod_.shoupPrecompute(u);
        t = mod_.mul(t, psi_);
        u = mod_.mul(u, psiInv_);
    }

    // Stage twiddle tables for the default root: stage t uses powers of
    // omega^(2^t), indices 0 .. (half >> t) - 1.
    const u64 half = n / 2;
    stageFwdTw_.resize(logN_);
    stageFwdTwShoup_.resize(logN_);
    stageInvTw_.resize(logN_);
    stageInvTwShoup_.resize(logN_);
    for (int s = 0; s < logN_; ++s) {
        const u64 count = (half >> s) ? (half >> s) : 1;
        const u64 fwdBase = powMod(omega_, 1ULL << s, q);
        const u64 invBase = powMod(omegaInv_, 1ULL << s, q);
        stageFwdTw_[s].resize(count);
        stageFwdTwShoup_[s].resize(count);
        stageInvTw_[s].resize(count);
        stageInvTwShoup_[s].resize(count);
        u64 fw = 1, iw = 1;
        for (u64 i = 0; i < count; ++i) {
            stageFwdTw_[s][i] = fw;
            stageFwdTwShoup_[s][i] = mod_.shoupPrecompute(fw);
            stageInvTw_[s][i] = iw;
            stageInvTwShoup_[s][i] = mod_.shoupPrecompute(iw);
            fw = mod_.mul(fw, fwdBase);
            iw = mod_.mul(iw, invBase);
        }
    }
}

void
CgNtt::cyclicForward(std::vector<u64> &a, u64 w) const
{
    const u64 q = mod_.value();
    const u64 half = n_ / 2;
    std::vector<u64> buf(n_);
    std::vector<u64> *src = &a, *dst = &buf;

    if (w == omega_) {
        // Default root: precomputed per-stage twiddles.
        for (int t = 0; t < logN_; ++t) {
            const u64 *tw = stageFwdTw_[t].data();
            const u64 *twS = stageFwdTwShoup_[t].data();
            for (u64 j = 0; j < half; ++j) {
                const u64 s = j >> t;
                const u64 u = (*src)[j];
                const u64 v = (*src)[j + half];
                (*dst)[2 * j] = addMod(u, v, q);
                (*dst)[2 * j + 1] =
                    mod_.mulShoup(subMod(u, v, q), tw[s], twS[s]);
            }
            std::swap(src, dst);
        }
    } else {
        // Arbitrary root (automorphism path): twiddles stepped
        // incrementally with Barrett multiplication.
        u64 base = w;
        for (int t = 0; t < logN_; ++t) {
            u64 tw = 1;
            u64 lastStep = 0;
            for (u64 j = 0; j < half; ++j) {
                const u64 step = j >> t;
                while (lastStep < step) {
                    tw = mod_.mul(tw, base);
                    ++lastStep;
                }
                const u64 u = (*src)[j];
                const u64 v = (*src)[j + half];
                (*dst)[2 * j] = addMod(u, v, q);
                (*dst)[2 * j + 1] = mod_.mul(subMod(u, v, q), tw);
            }
            std::swap(src, dst);
            base = mod_.mul(base, base);
        }
    }
    if (src != &a)
        a = *src;
}

void
CgNtt::cyclicInverse(std::vector<u64> &a, u64 w) const
{
    const u64 q = mod_.value();
    const u64 half = n_ / 2;
    std::vector<u64> buf(n_);
    std::vector<u64> *src = &a, *dst = &buf;

    if (w == omega_) {
        for (int t = logN_ - 1; t >= 0; --t) {
            const u64 *tw = stageInvTw_[t].data();
            const u64 *twS = stageInvTwShoup_[t].data();
            for (u64 j = 0; j < half; ++j) {
                const u64 sdx = j >> t;
                const u64 s = (*src)[2 * j];
                const u64 d =
                    mod_.mulShoup((*src)[2 * j + 1], tw[sdx], twS[sdx]);
                (*dst)[j] = addMod(s, d, q);
                (*dst)[j + half] = subMod(s, d, q);
            }
            std::swap(src, dst);
        }
    } else {
        const u64 wInv = invMod(w, q);
        for (int t = logN_ - 1; t >= 0; --t) {
            // Inverse twiddle base omega^-(2^t); pair-j twiddle base^(j >> t).
            const u64 base = powMod(wInv, 1ULL << t, q);
            u64 tw = 1;
            u64 lastStep = 0;
            for (u64 j = 0; j < half; ++j) {
                const u64 step = j >> t;
                while (lastStep < step) {
                    tw = mod_.mul(tw, base);
                    ++lastStep;
                }
                const u64 s = (*src)[2 * j];
                const u64 d = mod_.mul((*src)[2 * j + 1], tw);
                (*dst)[j] = addMod(s, d, q);
                (*dst)[j + half] = subMod(s, d, q);
            }
            std::swap(src, dst);
        }
    }
    if (src != &a)
        a = *src;
}

void
CgNtt::forward(std::vector<u64> &a) const
{
    UFC_PROF_SCOPE("cg_ntt.forward");
    UFC_CHECK(a.size() == n_, "size mismatch");
    for (u64 j = 0; j < n_; ++j)
        a[j] = mod_.mulShoup(a[j], twist_[j], twistShoup_[j]);
    cyclicForward(a, omega_);
    // Bit-reversed to natural order.
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = brev_[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
}

void
CgNtt::inverse(std::vector<u64> &a) const
{
    UFC_PROF_SCOPE("cg_ntt.inverse");
    UFC_CHECK(a.size() == n_, "size mismatch");
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = brev_[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
    cyclicInverse(a, omega_);
    // Untwist tables already fold in the 1/N scale factor.
    for (u64 j = 0; j < n_; ++j)
        a[j] = mod_.mulShoup(a[j], untwist_[j], untwistShoup_[j]);
}

void
CgNtt::forwardAutomorphism(std::vector<u64> &a, u64 k) const
{
    UFC_CHECK(a.size() == n_, "size mismatch");
    UFC_CHECK(k % 2 == 1, "automorphism index must be odd");
    k %= 2 * n_;
    // Twist with psi^k and run the same network with omega^k: the output is
    // the natural-order evaluation form of f(X^k).
    const u64 q = mod_.value();
    const u64 psiK = powMod(psi_, k, q);
    u64 t = 1;
    for (u64 j = 0; j < n_; ++j) {
        a[j] = mod_.mul(a[j], t);
        t = mod_.mul(t, psiK);
    }
    cyclicForward(a, powMod(omega_, k % n_, q));
    for (u64 i = 0; i < n_; ++i) {
        const u64 r = brev_[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
}

void
CgNtt::packedForward(std::vector<u64> &a, u64 m) const
{
    UFC_CHECK(a.size() == n_, "size mismatch");
    UFC_CHECK(m >= 2 && m <= n_ && n_ % m == 0, "bad packed degree " << m);
    const u64 p = n_ / m;
    // Functionally: per-polynomial negacyclic NTT of degree m, results in
    // the interleaved layout of Figure 7.  The hardware achieves the same
    // effect with log(m) constant-geometry stages on the packed vector.
    const NttTable *small = cachedNttTable(
        m, mod_.value(), powMod(psi_, n_ / m, mod_.value()));
    std::vector<u64> out(n_);
    std::vector<u64> tmp(m);
    for (u64 pi = 0; pi < p; ++pi) {
        std::copy(a.begin() + pi * m, a.begin() + (pi + 1) * m, tmp.begin());
        small->forward(tmp);
        for (u64 i = 0; i < m; ++i)
            out[i * p + pi] = tmp[i];
    }
    a = std::move(out);
}

void
CgNtt::packedInverse(std::vector<u64> &a, u64 m) const
{
    UFC_CHECK(a.size() == n_, "size mismatch");
    UFC_CHECK(m >= 2 && m <= n_ && n_ % m == 0, "bad packed degree " << m);
    const u64 p = n_ / m;
    const NttTable *small = cachedNttTable(
        m, mod_.value(), powMod(psi_, n_ / m, mod_.value()));
    std::vector<u64> out(n_);
    std::vector<u64> tmp(m);
    for (u64 pi = 0; pi < p; ++pi) {
        for (u64 i = 0; i < m; ++i)
            tmp[i] = a[i * p + pi];
        small->inverse(tmp);
        std::copy(tmp.begin(), tmp.end(), out.begin() + pi * m);
    }
    a = std::move(out);
}

} // namespace ufc
