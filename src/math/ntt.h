/**
 * @file
 * Negacyclic number-theoretic transform over Z_q[X]/(X^N + 1).
 *
 * NttTable implements the classical iterative algorithm (Cooley-Tukey DIT
 * forward, Gentleman-Sande DIF inverse, merged psi powers, Shoup constant
 * multiplication).  The public convention is that both coefficient and
 * evaluation forms are stored in natural index order; bit reversal is
 * handled internally.
 *
 * The constant-geometry variant used by the UFC hardware lives in
 * math/cg_ntt.h and is tested for equivalence against this implementation.
 */

#ifndef UFC_MATH_NTT_H
#define UFC_MATH_NTT_H

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace ufc {

/** Bit-reverse the low `bits` bits of x. */
inline u32
bitReverse(u32 x, int bits)
{
    u32 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/**
 * Precomputed tables for the negacyclic NTT of a fixed (N, q) pair.
 *
 * q must be prime with q ≡ 1 (mod 2N).  The forward transform maps the
 * coefficient form of a polynomial to its evaluations at odd powers of the
 * 2N-th root of unity psi; multiplication in the evaluation domain realizes
 * negacyclic convolution.
 */
class NttTable
{
  public:
    /**
     * Build tables for ring degree n (a power of two) and modulus q.
     * If psi == 0 a primitive 2n-th root of unity is found automatically;
     * passing psi explicitly supports the automorphism-via-NTT technique
     * (Section IV-C2 of the paper), which re-runs the NTT with psi^k.
     */
    NttTable(u64 n, u64 q, u64 psi = 0);

    u64 degree() const { return n_; }
    const Modulus &modulus() const { return mod_; }
    u64 psi() const { return psi_; }

    /** In-place forward NTT; input and output in natural order. */
    void forward(u64 *a) const;
    void forward(std::vector<u64> &a) const { forward(a.data()); }

    /** In-place inverse NTT; input and output in natural order. */
    void inverse(u64 *a) const;
    void inverse(std::vector<u64> &a) const { inverse(a.data()); }

    /**
     * Reference negacyclic convolution in O(N^2); used by tests only.
     */
    std::vector<u64> negacyclicMulSchoolbook(const std::vector<u64> &a,
                                             const std::vector<u64> &b) const;

  private:
    u64 n_ = 0;
    int logN_ = 0;
    Modulus mod_;
    u64 psi_ = 0;

    // Twiddles in the bit-reversed order the iterative algorithms consume.
    std::vector<u64> fwdTw_, fwdTwShoup_;
    std::vector<u64> invTw_, invTwShoup_;
    u64 nInv_ = 0, nInvShoup_ = 0;
};

} // namespace ufc

#endif // UFC_MATH_NTT_H
