/**
 * @file
 * Negacyclic number-theoretic transform over Z_q[X]/(X^N + 1).
 *
 * NttTable implements the classical iterative algorithm (Cooley-Tukey DIT
 * forward, Gentleman-Sande DIF inverse, merged psi powers, Shoup constant
 * multiplication).  The public convention is that both coefficient and
 * evaluation forms are stored in natural index order; bit reversal is
 * handled internally.
 *
 * ## Kernel tiers
 *
 * Three kernel implementations share every table:
 *
 *  - forward()/inverse() dispatch to the fastest available kernel:
 *    an AVX-512 IFMA butterfly kernel (52-bit multiply-accumulate, HEXL
 *    technique) when the CPU supports it and q < 2^50, otherwise a
 *    scalar kernel with Harvey lazy-reduction butterflies.  Both lazy
 *    kernels keep forward values in [0, 4q) and inverse values in
 *    [0, 2q) between stages and renormalize once at the end (see
 *    math/mod_arith.h for the invariants).
 *  - forwardReference()/inverseReference() are the original fully
 *    reduced butterflies.  They are the differential-testing oracle and
 *    the "pre-PR kernel" baseline measured by bench/bench_kernels; every
 *    kernel tier must agree with them bit-for-bit.
 *
 * All kernels are const and re-entrant: transforms of distinct arrays
 * may run concurrently against one shared table (the limb-parallel RNS
 * ops in poly/rns_poly.cpp depend on this).  Scratch space is per-thread.
 *
 * The constant-geometry variant used by the UFC hardware lives in
 * math/cg_ntt.h and is tested for equivalence against this implementation.
 * Prefer obtaining tables through math/ntt_cache.h so all users of one
 * (N, q) pair share a single set of twiddles.
 */

#ifndef UFC_MATH_NTT_H
#define UFC_MATH_NTT_H

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace ufc {

/** Bit-reverse the low `bits` bits of x. */
inline u32
bitReverse(u32 x, int bits)
{
    u32 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

namespace detail {

/**
 * Raw-pointer view of one NttTable's precomputation, the interface
 * between NttTable and the SIMD kernel translation unit
 * (math/ntt_avx512.cpp), which is compiled with AVX-512 flags and must
 * not be entered on machines without the feature.
 */
struct NttKernelView
{
    u64 n = 0;
    int logN = 0;
    u64 q = 0;
    const u64 *fwdTw = nullptr;      ///< forward twiddles, bit-rev order
    const u64 *fwdTwShoup52 = nullptr;
    const u64 *invTw = nullptr;      ///< inverse twiddles, bit-rev order
    const u64 *invTwShoup52 = nullptr;
    const u32 *brev = nullptr;       ///< bit-reverse permutation table
    u64 nInv = 0;
    u64 nInvShoup52 = 0;
};

/** True iff this CPU can run the AVX-512 IFMA kernels. */
bool avx512IfmaAvailable();

/** AVX-512 IFMA kernels; requires avx512IfmaAvailable(), q < 2^50 and
 *  n >= 16.  `scratch` must hold n words. */
void ifmaForward(const NttKernelView &v, u64 *a, u64 *scratch);
void ifmaInverse(const NttKernelView &v, u64 *a, u64 *scratch);

} // namespace detail

/**
 * Precomputed tables for the negacyclic NTT of a fixed (N, q) pair.
 *
 * q must be prime with q ≡ 1 (mod 2N).  The forward transform maps the
 * coefficient form of a polynomial to its evaluations at odd powers of the
 * 2N-th root of unity psi; multiplication in the evaluation domain realizes
 * negacyclic convolution.
 */
class NttTable
{
  public:
    /** Moduli below this bound are eligible for the IFMA kernels
     *  (butterfly operands stay under 4q < 2^52). */
    static constexpr u64 kIfmaModulusBound = 1ULL << 50;

    /**
     * Build tables for ring degree n (a power of two) and modulus q.
     * If psi == 0 a primitive 2n-th root of unity is found automatically;
     * passing psi explicitly supports the automorphism-via-NTT technique
     * (Section IV-C2 of the paper), which re-runs the NTT with psi^k.
     */
    NttTable(u64 n, u64 q, u64 psi = 0);

    // Non-copyable/movable: the kernel view holds pointers into the
    // twiddle vectors.  Tables are shared by pointer (see ntt_cache.h).
    NttTable(const NttTable &) = delete;
    NttTable &operator=(const NttTable &) = delete;

    u64 degree() const { return n_; }
    const Modulus &modulus() const { return mod_; }
    u64 psi() const { return psi_; }

    /** True when forward()/inverse() run on the AVX-512 IFMA kernels. */
    bool usesAvx512() const { return useIfma_; }

    /** Natural-order position of bit-reversed index i (and vice versa:
     *  the permutation is an involution). */
    u32 bitRev(u64 i) const { return brev_[i]; }

    /** In-place forward NTT; input and output in natural order. */
    void forward(u64 *a) const;
    void forward(std::vector<u64> &a) const { forward(a.data()); }

    /** In-place inverse NTT; input and output in natural order. */
    void inverse(u64 *a) const;
    void inverse(std::vector<u64> &a) const { inverse(a.data()); }

    /**
     * Original (pre-optimization) kernels with fully reduced butterflies.
     * Kept as the differential-testing oracle and as the baseline the
     * kernel microbenchmarks compare against.  Semantics are identical
     * to forward()/inverse().
     */
    void forwardReference(u64 *a) const;
    void inverseReference(u64 *a) const;

    /**
     * Reference negacyclic convolution in O(N^2); used by tests only.
     */
    std::vector<u64> negacyclicMulSchoolbook(const std::vector<u64> &a,
                                             const std::vector<u64> &b) const;

  private:
    void forwardScalar(u64 *a) const;
    void inverseScalar(u64 *a) const;

    u64 n_ = 0;
    int logN_ = 0;
    Modulus mod_;
    u64 psi_ = 0;
    bool useIfma_ = false;

    // Twiddles in the bit-reversed order the iterative algorithms consume.
    std::vector<u64> fwdTw_, fwdTwShoup_;
    std::vector<u64> invTw_, invTwShoup_;
    // 52-bit Shoup companions for the IFMA kernels (empty when q >= 2^50).
    std::vector<u64> fwdTwShoup52_, invTwShoup52_;
    // brev_[i] = bit-reverse of i over logN_ bits.
    std::vector<u32> brev_;
    u64 nInv_ = 0, nInvShoup_ = 0, nInvShoup52_ = 0;
    detail::NttKernelView view_;
};

} // namespace ufc

#endif // UFC_MATH_NTT_H
