/**
 * @file
 * Iterative radix-2 FFT implementation.
 */

#include "math/fft.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "math/ntt.h"

namespace ufc {

void
fft(std::vector<cplx> &a, bool inverse)
{
    const u64 n = a.size();
    UFC_CHECK(n >= 1 && std::has_single_bit(n), "FFT size must be 2^k");
    const int logN = std::countr_zero(n);

    for (u64 i = 0; i < n; ++i) {
        const u64 r = bitReverse(static_cast<u32>(i), logN);
        if (r > i)
            std::swap(a[i], a[r]);
    }
    for (u64 len = 2; len <= n; len <<= 1) {
        const double ang =
            2.0 * std::numbers::pi / static_cast<double>(len) *
            (inverse ? -1.0 : 1.0);
        const cplx wl(std::cos(ang), std::sin(ang));
        for (u64 i = 0; i < n; i += len) {
            cplx w(1.0, 0.0);
            for (u64 j = 0; j < len / 2; ++j) {
                const cplx u = a[i + j];
                const cplx v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wl;
            }
        }
    }
    if (inverse) {
        for (auto &x : a)
            x /= static_cast<double>(n);
    }
}

std::vector<double>
negacyclicFftMul(const std::vector<double> &a, const std::vector<double> &b)
{
    const u64 n = a.size();
    UFC_CHECK(b.size() == n, "operand size mismatch");
    // Twist by the primitive 2n-th complex root to turn negacyclic into
    // cyclic convolution, exactly as torus-FHE FFT implementations do.
    std::vector<cplx> fa(n), fb(n);
    const double ang = std::numbers::pi / static_cast<double>(n);
    for (u64 j = 0; j < n; ++j) {
        const cplx tw(std::cos(ang * j), std::sin(ang * j));
        fa[j] = a[j] * tw;
        fb[j] = b[j] * tw;
    }
    fft(fa, false);
    fft(fb, false);
    for (u64 j = 0; j < n; ++j)
        fa[j] *= fb[j];
    fft(fa, true);
    std::vector<double> c(n);
    for (u64 j = 0; j < n; ++j) {
        const cplx tw(std::cos(ang * j), -std::sin(ang * j));
        c[j] = (fa[j] * tw).real();
    }
    return c;
}

} // namespace ufc
