/**
 * @file
 * RNS basis and base-conversion implementation.
 */

#include "math/rns.h"

#include <cmath>

#include "common/check.h"

namespace ufc {

RnsBasis::RnsBasis(std::vector<u64> moduli)
    : values_(std::move(moduli))
{
    UFC_CHECK(!values_.empty(), "empty RNS basis");
    mods_.reserve(values_.size());
    for (u64 q : values_)
        mods_.emplace_back(q);

    // qHatInv_i = (prod_{j != i} q_j)^-1 mod q_i
    qHatInvModQi_.resize(values_.size());
    for (size_t i = 0; i < values_.size(); ++i) {
        u64 prod = 1;
        for (size_t j = 0; j < values_.size(); ++j) {
            if (j != i)
                prod = mods_[i].mul(prod, values_[j] % values_[i]);
        }
        qHatInvModQi_[i] = invMod(prod, values_[i]);
    }
}

u64
RnsBasis::qHatModP(size_t i, const Modulus &p) const
{
    u64 prod = 1;
    for (size_t j = 0; j < values_.size(); ++j) {
        if (j != i)
            prod = p.mul(prod, values_[j] % p.value());
    }
    return prod;
}

u64
RnsBasis::qModP(const Modulus &p) const
{
    u64 prod = 1;
    for (u64 q : values_)
        prod = p.mul(prod, q % p.value());
    return prod;
}

double
RnsBasis::logQ() const
{
    double acc = 0.0;
    for (u64 q : values_)
        acc += std::log2(static_cast<double>(q));
    return acc;
}

std::vector<u64>
baseConvert(const std::vector<u64> &residues, const RnsBasis &from,
            const RnsBasis &to)
{
    UFC_CHECK(residues.size() == from.size(), "residue count mismatch");
    // y_j = [x_j * qHat_j^-1]_{q_j}
    std::vector<u64> y(from.size());
    for (size_t j = 0; j < from.size(); ++j)
        y[j] = from.mod(j).mul(residues[j], from.qHatInvModQi(j));

    std::vector<u64> out(to.size());
    for (size_t i = 0; i < to.size(); ++i) {
        const Modulus &p = to.mod(i);
        u64 acc = 0;
        for (size_t j = 0; j < from.size(); ++j)
            acc = p.add(acc, p.mul(y[j] % p.value(), from.qHatModP(j, p)));
        out[i] = acc;
    }
    return out;
}

i128
crtReconstructSigned(const std::vector<u64> &residues, const RnsBasis &basis)
{
    UFC_CHECK(residues.size() == basis.size(), "residue count mismatch");
    UFC_CHECK(basis.logQ() < 126.0, "basis too large for 128-bit CRT");
    u128 bigQ = 1;
    for (u64 q : basis.values())
        bigQ *= q;

    u128 acc = 0;
    for (size_t j = 0; j < basis.size(); ++j) {
        const u64 qj = basis.value(j);
        const u128 qHat = bigQ / qj;
        const u64 y = basis.mod(j).mul(residues[j], basis.qHatInvModQi(j));
        acc = (acc + (qHat % bigQ) * y) % bigQ;
    }
    if (acc > bigQ / 2)
        return static_cast<i128>(acc) - static_cast<i128>(bigQ);
    return static_cast<i128>(acc);
}

} // namespace ufc
