/**
 * @file
 * Constant-geometry (Pease) NTT.
 *
 * The UFC hardware (paper Section IV-C1) uses the constant-geometry NTT so
 * that every one of the log(N) stages applies the *same* permutation (the
 * perfect shuffle), allowing a single fixed interconnect instead of log(N)
 * distinct stage networks.  The forward transform uses decimation in
 * frequency (DIF), the inverse decimation in time (DIT), matching Figure 6.
 *
 * The negacyclic twist is applied as explicit pre/post scaling by powers of
 * psi.  This keeps the shuffle machinery a pure cyclic DFT, which is also
 * what enables the automorphism-via-NTT trick: re-running the transform with
 * omega^k in place of omega evaluates f(X^k).
 *
 * CgNtt also implements the small-polynomial packing of Section V-A: P
 * packed degree-M polynomials stored contiguously are transformed in log(M)
 * constant-geometry stages and land in the interleaved evaluation layout of
 * Figure 7 (coefficient i of polynomial p at slot i*P + p).
 */

#ifndef UFC_MATH_CG_NTT_H
#define UFC_MATH_CG_NTT_H

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace ufc {

/** Constant-geometry negacyclic NTT over Z_q[X]/(X^N + 1). */
class CgNtt
{
  public:
    /**
     * Build tables for degree n and modulus q.  psi, if nonzero, overrides
     * the automatically selected primitive 2n-th root of unity.
     */
    CgNtt(u64 n, u64 q, u64 psi = 0);

    u64 degree() const { return n_; }
    const Modulus &modulus() const { return mod_; }

    /**
     * Forward negacyclic NTT (DIF constant geometry): coefficient form in
     * natural order to evaluation form in natural order.
     */
    void forward(std::vector<u64> &a) const;

    /** Inverse negacyclic NTT (DIT constant geometry). */
    void inverse(std::vector<u64> &a) const;

    /**
     * Forward transform of f(X^k): the automorphism-via-NTT formulation of
     * Section IV-C2.  Computes the evaluation form of the automorphism image
     * sigma_k(f) directly from the coefficient form of f, using the same
     * shuffle network with re-indexed twiddles.  k must be odd.
     */
    void forwardAutomorphism(std::vector<u64> &a, u64 k) const;

    /**
     * Small-polynomial packing (Section V-A): treat `a` as P = n/m packed
     * degree-m polynomials in the continuous layout and transform each to
     * evaluation form, producing the interleaved layout of Figure 7.
     * Runs log(m) constant-geometry stages worth of work.
     */
    void packedForward(std::vector<u64> &a, u64 m) const;

    /** Inverse of packedForward: interleaved evaluations back to packed
     *  coefficient form in the continuous layout. */
    void packedInverse(std::vector<u64> &a, u64 m) const;

    /**
     * The single permutation the hardware network implements: the perfect
     * shuffle (left rotation of the log(N)-bit lane address).  Exposed so
     * the interconnect model and tests can validate against it.
     */
    static u64
    perfectShuffle(u64 index, int logN)
    {
        const u64 mask = (1ULL << logN) - 1;
        return ((index << 1) | (index >> (logN - 1))) & mask;
    }

  private:
    /** Cyclic DIF constant-geometry stages with root w (order n). */
    void cyclicForward(std::vector<u64> &a, u64 w) const;
    /** Cyclic DIT constant-geometry stages (inverse), root w. */
    void cyclicInverse(std::vector<u64> &a, u64 w) const;

    u64 n_ = 0;
    int logN_ = 0;
    Modulus mod_;
    u64 psi_ = 0, psiInv_ = 0;
    u64 omega_ = 0, omegaInv_ = 0;
    u64 nInv_ = 0;
    // Pre/post twist tables for the negacyclic wrap.
    std::vector<u64> twist_, twistShoup_;
    std::vector<u64> untwist_, untwistShoup_;
    // Per-stage twiddles (value + Shoup constant) for the default root:
    // stage t pair j multiplies by stageFwdTw_[t][j >> t].  Transforms
    // with a non-default root (forwardAutomorphism) recompute twiddles
    // on the fly instead.
    std::vector<std::vector<u64>> stageFwdTw_, stageFwdTwShoup_;
    std::vector<std::vector<u64>> stageInvTw_, stageInvTwShoup_;
    std::vector<u32> brev_; ///< bit-reversal permutation table
};

} // namespace ufc

#endif // UFC_MATH_CG_NTT_H
