/**
 * @file
 * Implementation of prime search and root-of-unity discovery.
 */

#include "math/primes.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "math/mod_arith.h"

namespace ufc {

namespace {

/** One Miller-Rabin round with witness a. Returns false if composite. */
bool
millerRabinRound(u64 n, u64 d, int r, u64 a)
{
    a %= n;
    if (a == 0)
        return true;
    u64 x = powMod(a, d, n);
    if (x == 1 || x == n - 1)
        return true;
    for (int i = 0; i < r - 1; ++i) {
        x = mulMod(x, x, n);
        if (x == n - 1)
            return true;
    }
    return false;
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic witness set for all 64-bit integers.
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (!millerRabinRound(n, d, r, a))
            return false;
    }
    return true;
}

u64
findNttPrime(int bits, u64 twoN, int skip)
{
    UFC_CHECK(bits >= 20 && bits <= 60, "prime size out of range: " << bits);
    // Start from the largest candidate below 2^bits congruent to 1 mod 2N.
    u64 top = (bits == 64) ? ~0ULL : ((1ULL << bits) - 1);
    u64 cand = top - ((top - 1) % twoN);
    int found = 0;
    while (cand > twoN) {
        if (isPrime(cand)) {
            if (found == skip)
                return cand;
            ++found;
        }
        cand -= twoN;
    }
    ufcPanic("findNttPrime: no prime found");
}

std::vector<u64>
generateNttPrimes(int bits, u64 twoN, int count)
{
    std::vector<u64> primes;
    primes.reserve(count);
    for (int i = 0; i < count; ++i)
        primes.push_back(findNttPrime(bits, twoN, i));
    return primes;
}

namespace {

/** Pollard's rho: find a nontrivial factor of composite n. */
u64
pollardRho(u64 n)
{
    if ((n & 1) == 0)
        return 2;
    for (u64 c = 1;; ++c) {
        u64 x = 2, y = 2, d = 1;
        while (d == 1) {
            x = addMod(mulMod(x, x, n), c, n);
            y = addMod(mulMod(y, y, n), c, n);
            y = addMod(mulMod(y, y, n), c, n);
            u64 diff = x > y ? x - y : y - x;
            if (diff == 0)
                break;
            d = std::gcd(diff, n);
        }
        if (d != 1 && d != n)
            return d;
    }
}

/** Collect the distinct prime factors of n. */
void
factorize(u64 n, std::vector<u64> &factors)
{
    if (n == 1)
        return;
    if (isPrime(n)) {
        for (u64 f : factors)
            if (f == n)
                return;
        factors.push_back(n);
        return;
    }
    // Strip small factors first so rho only sees hard composites.
    for (u64 p = 2; p < 100 && p * p <= n; ++p) {
        if (n % p == 0) {
            factorize(p, factors);
            while (n % p == 0)
                n /= p;
            factorize(n, factors);
            return;
        }
    }
    u64 d = pollardRho(n);
    factorize(d, factors);
    factorize(n / d, factors);
}

} // namespace

u64
findGenerator(u64 q)
{
    u64 phi = q - 1;
    std::vector<u64> factors;
    factorize(phi, factors);

    for (u64 g = 2; g < q; ++g) {
        bool ok = true;
        for (u64 f : factors) {
            if (powMod(g, phi / f, q) == 1) {
                ok = false;
                break;
            }
        }
        if (ok)
            return g;
    }
    ufcPanic("findGenerator: no generator found");
}

u64
findPrimitiveRoot(u64 n, u64 q)
{
    UFC_CHECK((q - 1) % n == 0,
              "no " << n << "-th root of unity mod " << q);
    u64 g = findGenerator(q);
    u64 w = powMod(g, (q - 1) / n, q);
    UFC_CHECK(powMod(w, n, q) == 1, "root order check failed");
    UFC_CHECK(n == 1 || powMod(w, n / 2, q) != 1, "root not primitive");
    return w;
}

} // namespace ufc
