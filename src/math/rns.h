/**
 * @file
 * Residue number system (RNS) machinery: bases, exact CRT reconstruction
 * helpers, and the fast base conversion (BConv) used by CKKS hybrid
 * key-switching (paper Section II-B3).
 */

#ifndef UFC_MATH_RNS_H
#define UFC_MATH_RNS_H

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace ufc {

/**
 * An RNS basis: a set of pairwise-coprime word-size primes q_0..q_{L-1}
 * together with the precomputation needed by base conversion.
 */
class RnsBasis
{
  public:
    RnsBasis() = default;
    explicit RnsBasis(std::vector<u64> moduli);

    size_t size() const { return mods_.size(); }
    const Modulus &mod(size_t i) const { return mods_[i]; }
    u64 value(size_t i) const { return mods_[i].value(); }
    const std::vector<u64> &values() const { return values_; }

    /** (Q / q_i)^-1 mod q_i — the qHatInv factors of the BConv formula. */
    u64 qHatInvModQi(size_t i) const { return qHatInvModQi_[i]; }

    /** Q / q_i reduced mod an arbitrary target modulus p. */
    u64 qHatModP(size_t i, const Modulus &p) const;

    /** Q mod p for an arbitrary modulus p. */
    u64 qModP(const Modulus &p) const;

    /** Total log2 of the basis product (for parameter accounting). */
    double logQ() const;

  private:
    std::vector<Modulus> mods_;
    std::vector<u64> values_;
    std::vector<u64> qHatInvModQi_;
};

/**
 * Fast base conversion of a single RNS integer (given as residues w.r.t.
 * `from`) into residues w.r.t. the moduli of `to`:
 *
 *   BConv(x) = sum_j [x_j * qHat_j^-1]_{q_j} * qHat_j  (mod p_i)
 *
 * This is the standard approximate conversion (result may be off by a small
 * multiple of Q, which the CKKS noise analysis absorbs).
 */
std::vector<u64> baseConvert(const std::vector<u64> &residues,
                             const RnsBasis &from, const RnsBasis &to);

/**
 * Exact CRT reconstruction of a small signed integer from its residues.
 * Valid when |x| < Q/2 and Q fits in 128 bits; used by tests.
 */
i128 crtReconstructSigned(const std::vector<u64> &residues,
                          const RnsBasis &basis);

} // namespace ufc

#endif // UFC_MATH_RNS_H
