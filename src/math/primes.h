/**
 * @file
 * NTT-friendly prime generation and roots of unity.
 *
 * CKKS RNS limbs and the TFHE prime modulus are all primes of the form
 * q = k * 2N + 1 so that Z_q contains a primitive 2N-th root of unity and
 * the negacyclic NTT over Z_q[X]/(X^N + 1) exists.
 */

#ifndef UFC_MATH_PRIMES_H
#define UFC_MATH_PRIMES_H

#include <vector>

#include "common/types.h"

namespace ufc {

/** Deterministic Miller-Rabin primality test for 64-bit integers. */
bool isPrime(u64 n);

/**
 * Find the largest prime q < 2^bits with q ≡ 1 (mod 2N), skipping the
 * first `skip` candidates (so several distinct primes of the same size can
 * be generated).
 */
u64 findNttPrime(int bits, u64 twoN, int skip = 0);

/** Generate `count` distinct NTT-friendly primes of roughly `bits` bits. */
std::vector<u64> generateNttPrimes(int bits, u64 twoN, int count);

/** Find a generator (primitive root) of Z_q^*. q must be prime. */
u64 findGenerator(u64 q);

/** Find a primitive n-th root of unity mod prime q; n must divide q - 1. */
u64 findPrimitiveRoot(u64 n, u64 q);

} // namespace ufc

#endif // UFC_MATH_PRIMES_H
