/**
 * @file
 * Process-wide NTT twiddle-table cache.
 *
 * NttTable construction is expensive (O(N) modular exponentiations plus
 * four to six precomputed constant vectors), and the same (N, q) pairs
 * recur everywhere: every RNS limb of every ciphertext, both NTT
 * variants (classical and constant-geometry), key material, and tests.
 * cachedNttTable() builds each table once and hands out a stable pointer
 * that remains valid for the life of the process, so RingContext,
 * CgNtt's packed transforms, and benchmarks all share one set of
 * twiddles per modulus.
 *
 * The cache is guarded by a mutex, which also makes lazy table creation
 * safe from limb-parallel code — unlike the per-context lazy map it
 * replaces.  Lookups after the first are a mutex acquire plus a map
 * find; callers on hot paths should hold on to the returned pointer.
 */

#ifndef UFC_MATH_NTT_CACHE_H
#define UFC_MATH_NTT_CACHE_H

#include "math/ntt.h"

namespace ufc {

/**
 * Return the shared NttTable for (n, q, psi), building it on first use.
 * psi = 0 (the default root) is the common case; explicit psi values
 * (automorphism transforms) get their own cache entries.  The pointer
 * is never invalidated.
 */
const NttTable *cachedNttTable(u64 n, u64 q, u64 psi = 0);

/** Number of distinct tables currently cached (for tests/diagnostics). */
std::size_t nttCacheSize();

} // namespace ufc

#endif // UFC_MATH_NTT_CACHE_H
