/**
 * @file
 * Performance model of Strix (MICRO'23), the state-of-the-art TFHE
 * accelerator the paper compares against.
 *
 * Built from Strix's published architectural parameters: 8 clusters, each
 * with a fully pipelined 14-stage FFT with 4 copies — 1792 butterfly units
 * total (paper Section VII-A2) — 64-bit FFT datapath over a power-of-two
 * 32-bit torus modulus, streaming external-product pipelines, and ring
 * sizes limited to logN <= 14 (paper Figure 2).  The FFT pipeline is
 * optimized for the N = 2^10 design point; utilization decays for larger
 * rings as recombination passes serialize.
 */

#ifndef UFC_BASELINES_STRIX_PERF_H
#define UFC_BASELINES_STRIX_PERF_H

#include "sim/engine.h"

namespace ufc {
namespace baselines {

/** Strix configuration (defaults = published design scaled to 7 nm). */
struct StrixConfig
{
    int butterflies = 1792;    ///< 8 clusters x 14 stages x 4 copies x 4
    int designLogN = 9;        ///< 512-point FFT pipeline units
    int maxLogN = 14;          ///< hard ring-size limit
    double macWordsPerCycle = 4096.0;
    double pipelineEff = 0.85; ///< streaming fill/drain efficiency
    double lweWordsPerCycle = 2048.0; ///< key-switch/accumulation units
    double hbmGBs = 512.0;
    double scratchpadMb = 16.0;
    double freqGHz = 1.0;
    int wordBits = 32;
    double areaMm2 = 40.6;     ///< 28 nm design scaled to 7 nm
    double staticW = 3.5;
    double peakDynamicW = 13.0;
};

/** MachinePerf implementation for Strix. */
class StrixPerf : public sim::MachinePerf
{
  public:
    explicit StrixPerf(const StrixConfig &cfg = StrixConfig{})
        : cfg_(cfg)
    {}

    const StrixConfig &config() const { return cfg_; }

    /**
     * FFT-unit utilization versus ring size (paper Figure 2): full at the
     * design point, decaying as recombination passes serialize, zero
     * beyond the supported maximum.
     */
    static double
    fftUtilization(int logDegree, int designLogN, int maxLogN)
    {
        if (logDegree > maxLogN)
            return 0.0;
        if (logDegree <= designLogN)
            return 1.0;
        return static_cast<double>(designLogN) / logDegree;
    }

    double pipelineFillCycles() const override { return 14.0; }
    double computeCycles(const isa::HwInst &inst) const override;
    isa::Resource resourceFor(const isa::HwInst &inst) const override;
    double laneFraction(const isa::HwInst &inst) const override;
    double nocCycles(const isa::HwInst &inst) const override;
    double hbmBytesPerCycle() const override;
    double scratchpadBytes() const override;

  private:
    StrixConfig cfg_;
};

} // namespace baselines
} // namespace ufc

#endif // UFC_BASELINES_STRIX_PERF_H
