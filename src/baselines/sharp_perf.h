/**
 * @file
 * Performance model of SHARP (Kim et al., ISCA'23), the state-of-the-art
 * CKKS accelerator the paper compares against.
 *
 * Built from SHARP's published architectural parameters (paper Table IV
 * column 1): a 36-bit word, deeply pipelined NTTU at 1024 words/cycle for
 * logN = 16 (with stage-bypass utilization loss for smaller rings, paper
 * Figure 2), a 16384-MAC base-conversion unit, 2048 words/cycle of
 * element-wise throughput, an all-to-all NoC used for automorphisms, and
 * 1 TB/s of HBM.  Following the paper's methodology (Section VI-C), the
 * scratchpad is modeled at 288 MB so function-unit utilization matches
 * SHARP's reported values.
 */

#ifndef UFC_BASELINES_SHARP_PERF_H
#define UFC_BASELINES_SHARP_PERF_H

#include "sim/engine.h"

namespace ufc {
namespace baselines {

/** SHARP configuration knobs (defaults = published design, 64 clusters). */
struct SharpConfig
{
    double nttWordsPerCycle = 1024.0; ///< at logN = 16
    int nttPipelineLogN = 16;         ///< pipeline designed for 2^16
    double bconvMacsPerCycle = 16384.0;
    double elewWordsPerCycle = 2048.0;
    double nocWordsPerCycle = 1024.0;
    double hbmGBs = 1024.0;
    double scratchpadMb = 288.0 + 18.0;
    double freqGHz = 1.0;
    int wordBits = 36;
    double areaMm2 = 223.6;  ///< scaled with the 288 MB scratchpad
    double staticW = 20.0;
    double peakDynamicW = 85.0;
};

/** MachinePerf implementation for SHARP. */
class SharpPerf : public sim::MachinePerf
{
  public:
    explicit SharpPerf(const SharpConfig &cfg = SharpConfig{})
        : cfg_(cfg)
    {}

    const SharpConfig &config() const { return cfg_; }

    /** Stage-bypass utilization of the pipelined NTTU (Figure 2). */
    static double
    nttUtilization(int logDegree, int pipelineLogN)
    {
        if (logDegree >= pipelineLogN)
            return 1.0;
        return static_cast<double>(logDegree) / pipelineLogN;
    }

    double computeCycles(const isa::HwInst &inst) const override;
    isa::Resource resourceFor(const isa::HwInst &inst) const override;
    double laneFraction(const isa::HwInst &inst) const override;
    double nocCycles(const isa::HwInst &inst) const override;
    double hbmBytesPerCycle() const override;
    double scratchpadBytes() const override;

  private:
    SharpConfig cfg_;
};

} // namespace baselines
} // namespace ufc

#endif // UFC_BASELINES_SHARP_PERF_H
