/**
 * @file
 * SHARP performance model implementation.
 */

#include "baselines/sharp_perf.h"

#include <algorithm>

namespace ufc {
namespace baselines {

using isa::HwInst;
using isa::HwOp;
using isa::Resource;

double
SharpPerf::computeCycles(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto: {
        // Deep pipeline: throughput is nttWordsPerCycle at the design
        // point, degraded by stage bypass for smaller rings.
        const double util =
            nttUtilization(inst.logDegree, cfg_.nttPipelineLogN);
        const double rate = cfg_.nttWordsPerCycle * util;
        return std::max(1.0, static_cast<double>(inst.words) / rate);
      }
      case HwOp::BconvMac:
        return std::max(1.0, static_cast<double>(inst.work) /
                                 cfg_.bconvMacsPerCycle);
      case HwOp::Ewmm:
      case HwOp::Ewma:
      case HwOp::EwScale:
      case HwOp::MonomialMul:
      case HwOp::KeyGenOtf:
        return std::max(1.0, static_cast<double>(inst.work) /
                                 cfg_.elewWordsPerCycle);
      case HwOp::Shuffle:
        // Automorphism through the all-to-all NoC.
        return std::max(1.0, static_cast<double>(inst.words) /
                                 cfg_.nocWordsPerCycle);
      case HwOp::Decomp:
      case HwOp::Extract:
      case HwOp::Reduce:
        // SHARP has no hardware for the logic-scheme primitives; when a
        // lowering nevertheless asks, the BConv MAC pipeline runs with a
        // single active lane (paper Section III-A).
        return std::max(1.0, static_cast<double>(inst.work));
    }
    return 1.0;
}

Resource
SharpPerf::resourceFor(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return Resource::Butterfly;
      case HwOp::Shuffle:
        return Resource::Noc;
      default:
        return Resource::VectorAlu;
    }
}

double
SharpPerf::laneFraction(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return nttUtilization(inst.logDegree, cfg_.nttPipelineLogN);
      case HwOp::Decomp:
      case HwOp::Extract:
      case HwOp::Reduce:
        return 1.0 / cfg_.bconvMacsPerCycle; // single-lane activation
      default:
        return 1.0;
    }
}

double
SharpPerf::nocCycles(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Shuffle:
        return computeCycles(inst);
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        // Transpose networks inside the pipelined NTTU.
        return 0.5 * computeCycles(inst);
      default:
        return 0.0;
    }
}

double
SharpPerf::hbmBytesPerCycle() const
{
    return cfg_.hbmGBs / cfg_.freqGHz;
}

double
SharpPerf::scratchpadBytes() const
{
    return cfg_.scratchpadMb * 1024.0 * 1024.0;
}

} // namespace baselines
} // namespace ufc
