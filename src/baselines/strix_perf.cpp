/**
 * @file
 * Strix performance model implementation.
 */

#include "baselines/strix_perf.h"

#include <algorithm>

#include "common/error.h"

namespace ufc {
namespace baselines {

using isa::HwInst;
using isa::HwOp;
using isa::Resource;

double
StrixPerf::computeCycles(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto: {
        const double util = fftUtilization(inst.logDegree,
                                           cfg_.designLogN, cfg_.maxLogN);
        // A ring outside Strix's FFT range is a workload/machine
        // mismatch (user input), so it must stay recoverable.
        UFC_EXPECT(util > 0.0, ConfigError,
                   "Strix cannot process logN=" << inst.logDegree
                                                << " polynomials");
        // FFT work equals NTT butterfly work (inst.work) on 64-bit units.
        const double rate = cfg_.butterflies * util * cfg_.pipelineEff;
        return std::max(1.0, static_cast<double>(inst.work) / rate);
      }
      case HwOp::Ewmm:
      case HwOp::Ewma:
      case HwOp::EwScale:
      case HwOp::MonomialMul:
      case HwOp::Decomp:
      case HwOp::BconvMac:
      case HwOp::KeyGenOtf:
        return std::max(1.0, static_cast<double>(inst.work) /
                                 cfg_.macWordsPerCycle);
      case HwOp::Extract:
      case HwOp::Reduce:
        return std::max(1.0, static_cast<double>(inst.work) /
                                 cfg_.lweWordsPerCycle);
      case HwOp::Shuffle:
        return std::max(1.0, static_cast<double>(inst.words) /
                                 cfg_.macWordsPerCycle);
    }
    return 1.0;
}

Resource
StrixPerf::resourceFor(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return Resource::Butterfly;
      case HwOp::Extract:
      case HwOp::Reduce:
        return Resource::Lweu;
      case HwOp::Shuffle:
        return Resource::Noc;
      default:
        return Resource::VectorAlu;
    }
}

double
StrixPerf::laneFraction(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return fftUtilization(inst.logDegree, cfg_.designLogN,
                              cfg_.maxLogN);
      default:
        return 1.0;
    }
}

double
StrixPerf::nocCycles(const HwInst &inst) const
{
    switch (inst.op) {
      case HwOp::Ntt:
      case HwOp::Intt:
      case HwOp::NttAuto:
        return 0.5 * computeCycles(inst);
      case HwOp::Shuffle:
        return computeCycles(inst);
      default:
        return 0.0;
    }
}

double
StrixPerf::hbmBytesPerCycle() const
{
    return cfg_.hbmGBs / cfg_.freqGHz;
}

double
StrixPerf::scratchpadBytes() const
{
    return cfg_.scratchpadMb * 1024.0 * 1024.0;
}

} // namespace baselines
} // namespace ufc
