/**
 * @file
 * LWE -> RLWE ring packing via EvalTrace (paper Section II-D: repacking).
 *
 * Each input LWE embeds into an RLWE whose constant coefficient carries
 * its phase (the other coefficients are garbage); log(N) homomorphic
 * automorphism-and-add steps (the field trace) zero the garbage while
 * multiplying the message by N; monomial shifts then superpose the packed
 * values into distinct coefficients.
 *
 * The trace factor N means packed messages are recovered as
 * (N mod t) * m mod t, so the plaintext modulus t must be coprime to N
 * (odd): the caller inverts the factor after decryption.  This is the
 * standard scaling behaviour of trace-based packing (Chen et al.).
 */

#ifndef UFC_SWITCHING_REPACK_H
#define UFC_SWITCHING_REPACK_H

#include <memory>
#include <vector>

#include "tfhe/rlwe_ks.h"

namespace ufc {
namespace switching {

/** Packs LWE ciphertexts (dim N_ring, same modulus) into one RLWE. */
class RingPacker
{
  public:
    /**
     * @param ringKey   the target ring key (the LWE inputs must already be
     *                  under its coefficient vector; use LweSwitchKey to
     *                  get there)
     * @param gadget    decomposition for the automorphism key switches
     * @param sigma     key-encryption noise
     */
    RingPacker(const tfhe::RlweSecretKey &ringKey, const Gadget &gadget,
               double sigma, Rng &rng);

    /**
     * Pack lwes[i] into coefficient i of one RLWE ciphertext.  At most
     * N_ring inputs.  The packed message at coefficient i decrypts to
     * (N mod t) * m_i (mod t) for plaintext modulus t coprime to N.
     */
    tfhe::RlweCiphertext pack(
        const std::vector<tfhe::LweCiphertext> &lwes) const;

    /** The LWE key the inputs must be under. */
    tfhe::LweSecretKey inputLweKey() const;

    /** Multiplier applied to packed messages: N mod t. */
    u64 traceFactor(u64 t) const { return degree_ % t; }

  private:
    u64 degree_;
    const NttTable *table_;
    /// Trace-step key-switch keys for k = N/2^j + 1.
    std::vector<std::unique_ptr<tfhe::RlweKeySwitchKey>> traceKeys_;
    std::vector<u64> traceAutos_;
    tfhe::RlweSecretKey ringKey_;
};

} // namespace switching
} // namespace ufc

#endif // UFC_SWITCHING_REPACK_H
