/**
 * @file
 * CKKS <-> TFHE scheme switching (paper Section II-D, Figure 1).
 *
 * Extraction: a CKKS ciphertext at the last level (one RNS limb) is an
 * RLWE ciphertext mod q0; each plaintext coefficient extracts to an LWE
 * under the CKKS ring key's coefficient vector, which an LweSwitchKey then
 * normalizes to the logic scheme's key, dimension and modulus.
 *
 * Repacking: see switching/repack.h (EvalTrace-based ring packing).
 */

#ifndef UFC_SWITCHING_SCHEME_SWITCH_H
#define UFC_SWITCHING_SCHEME_SWITCH_H

#include "ckks/keys.h"
#include "switching/lwe_switch.h"

namespace ufc {
namespace switching {

/** The CKKS secret key's coefficients viewed as an LWE key mod q0. */
tfhe::LweSecretKey ckksKeyAsLwe(const ckks::CkksContext &ctx,
                                const ckks::SecretKey &sk);

/**
 * Extract the LWE encryption of plaintext coefficient `index` from a
 * one-limb CKKS ciphertext.  The result is an LWE of dimension N_ckks
 * modulo q0 under ckksKeyAsLwe(...); its message is the scaled value
 * round(value * ct.scale).
 */
tfhe::LweCiphertext extractFromCkks(const ckks::CkksContext &ctx,
                                    const ckks::Ciphertext &ct, u64 index);

/**
 * Everything needed to move extracted CKKS values into the logic scheme:
 * mod-switch q0 -> q_tfhe, then key/dimension switch to the TFHE key.
 */
class CkksToTfheBridge
{
  public:
    CkksToTfheBridge(const ckks::CkksContext &ctx,
                     const ckks::SecretKey &ckksSk,
                     const tfhe::LweSecretKey &tfheKey,
                     const tfhe::TfheParams &tfheParams, Rng &rng);

    /**
     * Full path: extract coefficient `index`, switch modulus to the TFHE
     * prime, switch key/dimension to the TFHE key.
     */
    tfhe::LweCiphertext convert(const ckks::Ciphertext &ct,
                                u64 index) const;

  private:
    const ckks::CkksContext *ctx_;
    std::unique_ptr<LweSwitchKey> dimSwitch_;
    u64 tfheQ_;
};

} // namespace switching
} // namespace ufc

#endif // UFC_SWITCHING_SCHEME_SWITCH_H
