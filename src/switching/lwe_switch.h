/**
 * @file
 * Standalone LWE-to-LWE key switching between arbitrary keys, dimensions
 * and (via LweCiphertext::modSwitch) moduli — the glue of every
 * scheme-switching path in Figure 1 of the paper.
 */

#ifndef UFC_SWITCHING_LWE_SWITCH_H
#define UFC_SWITCHING_LWE_SWITCH_H

#include <memory>
#include <vector>

#include "math/gadget.h"
#include "tfhe/lwe.h"

namespace ufc {
namespace switching {

/** Switches LWE ciphertexts from `srcKey` to `dstKey` (same modulus). */
class LweSwitchKey
{
  public:
    /**
     * @param srcKey   key of the inputs (any small values mod q)
     * @param dstKey   key of the outputs
     * @param q        ciphertext modulus
     * @param logBase  log2 of the decomposition base
     * @param levels   decomposition depth
     * @param sigma    key-encryption noise
     */
    LweSwitchKey(const tfhe::LweSecretKey &srcKey,
                 const tfhe::LweSecretKey &dstKey, u64 q, int logBase,
                 int levels, double sigma, Rng &rng);

    tfhe::LweCiphertext apply(const tfhe::LweCiphertext &ct) const;

    u32 srcDim() const { return srcDim_; }
    u32 dstDim() const { return dstDim_; }

  private:
    u64 q_;
    u32 srcDim_;
    u32 dstDim_;
    std::unique_ptr<Gadget> gadget_;
    /** ksk[i][j] encrypts srcKey_i * g_j under dstKey. */
    std::vector<std::vector<tfhe::LweCiphertext>> ksk_;
};

} // namespace switching
} // namespace ufc

#endif // UFC_SWITCHING_LWE_SWITCH_H
