/**
 * @file
 * CKKS -> TFHE extraction path.
 */

#include "switching/scheme_switch.h"

#include "common/check.h"

namespace ufc {
namespace switching {

using tfhe::LweCiphertext;
using tfhe::LweSecretKey;

namespace {

/** Ternary CKKS key coefficients re-encoded modulo q. */
LweSecretKey
ternaryKeyMod(const ckks::CkksContext &ctx, const ckks::SecretKey &sk,
              u64 q)
{
    Poly limb0 = sk.s.limb(0);
    limb0.toCoeff();
    const u64 q0 = ctx.qAt(0);
    LweSecretKey key;
    key.s.resize(ctx.degree());
    for (u64 i = 0; i < ctx.degree(); ++i) {
        const u64 v = limb0[i];
        if (v == 0 || v == 1)
            key.s[i] = v;
        else if (v == q0 - 1)
            key.s[i] = q - 1;
        else
            ufcPanic("CKKS secret is not ternary");
    }
    return key;
}

} // namespace

LweSecretKey
ckksKeyAsLwe(const ckks::CkksContext &ctx, const ckks::SecretKey &sk)
{
    return ternaryKeyMod(ctx, sk, ctx.qAt(0));
}

LweCiphertext
extractFromCkks(const ckks::CkksContext &ctx, const ckks::Ciphertext &ct,
                u64 index)
{
    UFC_CHECK(ct.limbs == 1, "extraction requires a one-limb ciphertext");
    const u64 n = ctx.degree();
    UFC_CHECK(index < n, "extraction index out of range");
    const u64 q = ctx.qAt(0);

    Poly c0 = ct.c0.limb(0);
    Poly c1 = ct.c1.limb(0);
    c0.toCoeff();
    c1.toCoeff();

    // decrypt(ct) = c0 + c1*s; coefficient `index` of c1*s is
    // sum_{i<=k} c1[k-i]s_i - sum_{i>k} c1[N+k-i]s_i, so the LWE
    // convention phase = b - <a, s> needs a negated/wrapped copy of c1.
    LweCiphertext out;
    out.q = q;
    out.b = c0[index];
    out.a.resize(n);
    for (u64 i = 0; i < n; ++i) {
        if (i <= index)
            out.a[i] = negMod(c1[index - i], q);
        else
            out.a[i] = c1[n + index - i];
    }
    return out;
}

CkksToTfheBridge::CkksToTfheBridge(const ckks::CkksContext &ctx,
                                   const ckks::SecretKey &ckksSk,
                                   const tfhe::LweSecretKey &tfheKey,
                                   const tfhe::TfheParams &tfheParams,
                                   Rng &rng)
    : ctx_(&ctx), tfheQ_(tfheParams.q)
{
    // Dimension/key switch runs after the modulus switch, so the source
    // key (CKKS ternary coefficients) is encoded mod q_tfhe.
    const LweSecretKey src = ternaryKeyMod(ctx, ckksSk, tfheParams.q);
    dimSwitch_ = std::make_unique<LweSwitchKey>(
        src, tfheKey, tfheParams.q, tfheParams.ksLogBase,
        tfheParams.ksLevels, tfheParams.lweSigma, rng);
}

LweCiphertext
CkksToTfheBridge::convert(const ckks::Ciphertext &ct, u64 index) const
{
    const LweCiphertext big = extractFromCkks(*ctx_, ct, index);
    const LweCiphertext switched = big.modSwitch(tfheQ_);
    return dimSwitch_->apply(switched);
}

} // namespace switching
} // namespace ufc
