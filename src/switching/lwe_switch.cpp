/**
 * @file
 * LWE key switch implementation.
 */

#include "switching/lwe_switch.h"

#include "common/check.h"

namespace ufc {
namespace switching {

using tfhe::LweCiphertext;
using tfhe::LweSecretKey;

LweSwitchKey::LweSwitchKey(const LweSecretKey &srcKey,
                           const LweSecretKey &dstKey, u64 q, int logBase,
                           int levels, double sigma, Rng &rng)
    : q_(q), srcDim_(static_cast<u32>(srcKey.s.size())),
      dstDim_(static_cast<u32>(dstKey.s.size())),
      gadget_(std::make_unique<Gadget>(q, logBase, levels))
{
    ksk_.resize(srcDim_);
    for (u32 i = 0; i < srcDim_; ++i) {
        ksk_[i].reserve(levels);
        for (int j = 0; j < levels; ++j) {
            const u64 m = mulMod(srcKey.s[i], gadget_->g(j), q);
            // Encrypt under the destination key with fresh noise.
            LweCiphertext ct;
            ct.q = q;
            ct.a.resize(dstDim_);
            u64 acc = m;
            for (u32 t = 0; t < dstDim_; ++t) {
                ct.a[t] = rng.uniform(q);
                if (dstKey.s[t]) {
                    acc = addMod(acc, mulMod(ct.a[t], dstKey.s[t], q), q);
                }
            }
            ct.b = addMod(acc, rng.gaussianMod(sigma, q), q);
            ksk_[i].push_back(std::move(ct));
        }
    }
}

LweCiphertext
LweSwitchKey::apply(const LweCiphertext &ct) const
{
    UFC_CHECK(ct.q == q_ && ct.dim() == srcDim_,
              "key switch input mismatch");
    LweCiphertext out = LweCiphertext::trivial(ct.b, dstDim_, q_);
    std::vector<u64> digits(gadget_->levels());
    for (u32 i = 0; i < srcDim_; ++i) {
        if (ct.a[i] == 0)
            continue;
        gadget_->decompose(ct.a[i], digits.data());
        for (int j = 0; j < gadget_->levels(); ++j) {
            if (digits[j] == 0)
                continue;
            LweCiphertext term = ksk_[i][j];
            term.scaleInPlace(digits[j]);
            out.subInPlace(term);
        }
    }
    return out;
}

} // namespace switching
} // namespace ufc
