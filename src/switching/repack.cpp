/**
 * @file
 * EvalTrace-based ring packing implementation.
 */

#include "switching/repack.h"

#include "common/check.h"

namespace ufc {
namespace switching {

using tfhe::LweCiphertext;
using tfhe::LweSecretKey;
using tfhe::RlweCiphertext;
using tfhe::RlweKeySwitchKey;
using tfhe::RlweSecretKey;

RingPacker::RingPacker(const RlweSecretKey &ringKey, const Gadget &gadget,
                       double sigma, Rng &rng)
    : degree_(ringKey.s.degree()), table_(ringKey.s.table()),
      ringKey_(ringKey)
{
    // Trace steps (1 + sigma_k) for k = N/2^j + 1 compose to the full
    // field trace; each needs a key switch sigma_k(s) -> s.
    u64 step = degree_;
    while (step >= 2) {
        const u64 k = step + 1;
        traceAutos_.push_back(k);
        Poly rotatedKey = ringKey.s.automorphism(k);
        traceKeys_.push_back(std::make_unique<RlweKeySwitchKey>(
            rotatedKey, ringKey, gadget, sigma, rng));
        step >>= 1;
    }
}

LweSecretKey
RingPacker::inputLweKey() const
{
    LweSecretKey key;
    key.s = ringKey_.s.data();
    return key;
}

RlweCiphertext
RingPacker::pack(const std::vector<LweCiphertext> &lwes) const
{
    UFC_CHECK(!lwes.empty() && lwes.size() <= degree_,
              "bad input count " << lwes.size());
    const u64 q = table_->modulus().value();

    RlweCiphertext total;
    total.a = Poly(table_, PolyForm::Coeff);
    total.b = Poly(table_, PolyForm::Coeff);

    for (size_t i = 0; i < lwes.size(); ++i) {
        const LweCiphertext &lwe = lwes[i];
        UFC_CHECK(lwe.q == q && lwe.dim() == degree_,
                  "LWE input parameters mismatch");

        // Embed: phase[0] of the RLWE equals the LWE phase.
        RlweCiphertext ct;
        ct.a = Poly(table_, PolyForm::Coeff);
        ct.b = Poly(table_, PolyForm::Coeff);
        ct.b[0] = lwe.b;
        ct.a[0] = lwe.a[0];
        for (u64 j = 1; j < degree_; ++j)
            ct.a[degree_ - j] = negMod(lwe.a[j], q);

        // EvalTrace: zero every coefficient but the constant one
        // (multiplying it by N).
        for (size_t s = 0; s < traceKeys_.size(); ++s) {
            RlweCiphertext rotated = applyRingAutomorphism(
                ct, traceAutos_[s], *traceKeys_[s]);
            rotated.toCoeff();
            ct.toCoeff();
            ct.addInPlace(rotated);
        }

        // Shift into coefficient i and superpose.
        total.addInPlace(ct.mulByMonomial(static_cast<i64>(i)));
    }
    return total;
}

} // namespace switching
} // namespace ufc
