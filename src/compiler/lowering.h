/**
 * @file
 * Lowering from the ciphertext-granularity trace IR to primitive hardware
 * instructions.
 *
 * The lowering encodes the FHE algorithms' real primitive counts — hybrid
 * key switching (ModUp / inner product / ModDown with dnum digits),
 * rescaling, automorphisms, TFHE blind rotation and key switching — and
 * applies the paper's compiler optimizations when the target supports
 * them: automorphism-via-NTT (Section IV-C2), rotation-as-monomial-
 * multiply (IV-C3), small-polynomial packing (V-A) and the TvLP/PLP/CoLP
 * parallel scheduling priority (V-B).
 */

#ifndef UFC_COMPILER_LOWERING_H
#define UFC_COMPILER_LOWERING_H

#include <memory>

#include "isa/inst.h"
#include "trace/trace.h"

namespace ufc {
namespace analysis {
class DiagnosticReport; // analysis/diagnostic.h
class VerifyingSink;    // analysis/verifying_sink.h
} // namespace analysis

namespace compiler {

/** Parallelism source prioritized when packing small polynomials. */
enum class Parallelism
{
    TvLP, ///< batch independent bootstraps (test-vector level)
    CoLP, ///< batch decomposed columns of one external product
};

/** Machine-dependent lowering knobs. */
struct LoweringOptions
{
    // Word geometry.
    int wordBits = 32;

    // Throughput geometry used for packing decisions.
    int totalButterflies = 8192;
    int totalVectorLanes = 16384;

    // Paper optimizations.
    bool autoViaNtt = true;        ///< else: NoC shuffle (SHARP style)
    bool rotateAsMonomialMul = true;
    bool smallPolyPacking = true;  ///< Section V-A
    Parallelism parallelism = Parallelism::TvLP;
    bool onTheFlyKeyGen = true;    ///< halve key traffic, add ALU work

    /// When set, the lowering interposes an analysis::VerifyingSink
    /// between itself and the target sink and appends any
    /// per-instruction rule violations (inst-*, buf-*) to this
    /// caller-owned report.  Null (the default) disables verification.
    analysis::DiagnosticReport *lint = nullptr;

    int
    wordsPerCoeff(int limbBits) const
    {
        return (limbBits + wordBits - 1) / wordBits;
    }
};

/**
 * Buffer-id namespaces the lowering hands to the scratchpad model.
 * Each operand class owns a disjoint 2^40-wide range so analyses can
 * classify a buffer from its id alone.
 */
inline constexpr u64 kCtBase = 1ULL << 40;  ///< ciphertext pool
inline constexpr u64 kEvkBase = 2ULL << 40; ///< relinearization keys
inline constexpr u64 kGkBase = 3ULL << 40;  ///< Galois (rotation) keys
inline constexpr u64 kBtkBase = 4ULL << 40; ///< TFHE bootstrap keys
inline constexpr u64 kKskBase = 5ULL << 40; ///< key-switch keys
inline constexpr u64 kPtBase = 6ULL << 40;  ///< plaintext operands

/**
 * True when `id` names a buffer from the lowering's rolling ciphertext
 * pool.  Ids there are drawn pseudorandomly over the trace-declared
 * live set to model reuse *locality* (see Lowering::ctBuffer), so they
 * carry no value identity: def-use conclusions must not be drawn from
 * them.  Key and plaintext ids are deterministic and value-accurate.
 */
inline constexpr bool
syntheticCiphertextId(u64 id)
{
    return id >= kCtBase && id < kEvkBase;
}

/**
 * Lowers a trace to an instruction stream, tracking buffer identities so
 * the scratchpad model sees a realistic working set.
 *
 * Thread safety: a Lowering instance is single-use and single-threaded
 * (it mutates its buffer-pool counters), but it holds no shared or static
 * state, so any number of instances may run concurrently — one per
 * simulation thread in the batch experiment runner.
 */
class Lowering
{
  public:
    Lowering(const trace::Trace *tr, const LoweringOptions &opts,
             isa::InstSink *sink);
    ~Lowering(); // out of line: verifier_ is incomplete here

    /** Lower the whole trace (and, when LoweringOptions::lint is set,
     *  run the verifier's end-of-stream checks). */
    void run();

    // Streaming entry points: run() is the batch form of these three.
    // A chunked trace reader delivers each event as it validates; the
    // caller is responsible for the whole-trace ordering contract (a
    // mark at opIndex i is streamed before op i).  The Trace passed to
    // the constructor may be header-only (empty ops/phases): the
    // lowering reads only the parameter header and liveCiphertexts.

    /** Forward one workload region marker to the sink. */
    void streamMark(const trace::PhaseMark &mark);
    /** Lower the next op, bracketed in its mnemonic phase. */
    void streamOp(const trace::TraceOp &op);
    /** End of stream: run the verifier's end-of-stream checks. */
    void finishStream();

    /** Lower a single op (used recursively, e.g. repacking). */
    void lowerOp(const trace::TraceOp &op);

  private:
    // CKKS pieces.
    void ckksKeySwitch(int limbs, int polys, u64 keyBufferBase);
    void ckksMult(const trace::TraceOp &op);
    void ckksRotate(const trace::TraceOp &op, bool conjugate);
    void ckksRescale(const trace::TraceOp &op);
    void ckksModRaise(const trace::TraceOp &op);

    // TFHE pieces.
    void tfhePbs(const trace::TraceOp &op);
    void tfheKeySwitch(int count);
    void tfheLinear(const trace::TraceOp &op);

    // Scheme switching.
    void switchExtract(const trace::TraceOp &op);
    void switchRepack(const trace::TraceOp &op);

    // Emission helpers.
    void emit(isa::HwOp op, u32 logDegree, u32 batch, u64 words, u64 work,
              std::vector<isa::BufferRef> buffers = {});

    /**
     * Emit `body` `trips` times.  When the sink folds repeats
     * (InstSink::beginRepeat), the body is lowered once and the
     * repetition is recorded structurally; otherwise every iteration is
     * emitted.  The caller must guarantee the iterations are
     * byte-identical: the body must not read or advance any lowering
     * state (buffer-pool counters, phase markers) — emit() calls with
     * fixed operands only.
     */
    template <typename Fn>
    void
    repeat(u64 trips, Fn &&body)
    {
        if (trips == 0)
            return;
        if (trips > 1 && sink_->beginRepeat(trips)) {
            body();
            sink_->endRepeat();
            return;
        }
        for (u64 k = 0; k < trips; ++k)
            body();
    }
    isa::BufferRef ctBuffer(bool write);
    isa::BufferRef keyBuffer(u64 id, u64 bytes);
    isa::BufferRef plaintextBuffer(const trace::TraceOp &op, int c);

    /** Batch of packed small polynomials for TFHE ops (Section V-A/B). */
    int packFactor(u64 ringDim, int available) const;

    const trace::Trace *trace_;
    LoweringOptions opts_;
    isa::InstSink *sink_;
    /// Interposed decorator when opts_.lint is set; owns no report.
    std::unique_ptr<analysis::VerifyingSink> verifier_;

    // CKKS geometry cached from the trace.
    int logN_ = 0;
    u64 n_ = 0;
    int wCkks_ = 1;   ///< machine words per CKKS coefficient
    double bytesCkks_ = 0.0;
    int alpha_ = 1;   ///< limbs per key-switching digit
    int specialK_ = 0;

    // TFHE geometry.
    int logNt_ = 0;
    u64 nt_ = 0;
    int wTfhe_ = 1;
    double bytesTfhe_ = 0.0;

    // Rolling ciphertext-buffer pool (working-set model).
    u64 nextCt_ = 0;
    u64 nextPt_ = 0;

};

} // namespace compiler
} // namespace ufc

#endif // UFC_COMPILER_LOWERING_H
