/**
 * @file
 * Trace-to-instruction lowering implementation.
 */

#include "compiler/lowering.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "analysis/verifying_sink.h"
#include "common/check.h"
#include "trace/serialize.h"

namespace ufc {
namespace compiler {

using isa::BufferRef;
using isa::HwInst;
using isa::HwOp;
using trace::OpKind;
using trace::TraceOp;

Lowering::Lowering(const trace::Trace *tr, const LoweringOptions &opts,
                   isa::InstSink *sink)
    : trace_(tr), opts_(opts), sink_(sink)
{
    if (opts_.lint) {
        verifier_ = std::make_unique<analysis::VerifyingSink>(
            sink_, opts_.lint);
        sink_ = verifier_.get();
    }
    if (trace_->ckksRingDim) {
        n_ = trace_->ckksRingDim;
        logN_ = std::countr_zero(n_);
        wCkks_ = opts_.wordsPerCoeff(trace_->ckksLimbBits);
        bytesCkks_ = wCkks_ * (opts_.wordBits / 8.0);
        alpha_ = (trace_->ckksLevels + trace_->ckksDnum - 1) /
                 trace_->ckksDnum;
        specialK_ = trace_->ckksSpecial;
    }
    if (trace_->tfheRingDim) {
        nt_ = trace_->tfheRingDim;
        logNt_ = std::countr_zero(nt_);
        wTfhe_ = opts_.wordsPerCoeff(trace_->tfheLimbBits);
        bytesTfhe_ = wTfhe_ * (opts_.wordBits / 8.0);
    }
}

Lowering::~Lowering() = default;

void
Lowering::run()
{
    // Interleave the workload's region markers with the op stream (a mark
    // at opIndex i fires before op i is lowered), and bracket every
    // high-level op in a phase named by its stable mnemonic, so the
    // exported timeline can be read at trace granularity.
    const auto &marks = trace_->phases;
    size_t next = 0;
    for (size_t i = 0; i < trace_->ops.size(); ++i) {
        while (next < marks.size() && marks[next].opIndex <= i)
            streamMark(marks[next++]);
        streamOp(trace_->ops[i]);
    }
    for (; next < marks.size(); ++next)
        streamMark(marks[next]);
    finishStream();
}

void
Lowering::streamMark(const trace::PhaseMark &mark)
{
    if (mark.begin)
        sink_->beginPhase(mark.name.c_str());
    else
        sink_->endPhase();
}

void
Lowering::streamOp(const trace::TraceOp &op)
{
    sink_->beginPhase(trace::opKindName(op.kind));
    lowerOp(op);
    sink_->endPhase();
}

void
Lowering::finishStream()
{
    if (verifier_)
        verifier_->finish();
}

void
Lowering::emit(HwOp op, u32 logDegree, u32 batch, u64 words, u64 work,
               std::vector<BufferRef> buffers)
{
    HwInst inst;
    inst.op = op;
    inst.logDegree = logDegree;
    inst.batch = batch;
    inst.words = words;
    inst.work = work;
    inst.buffers = std::move(buffers);
    sink_->issue(inst);
}

BufferRef
Lowering::ctBuffer(bool write)
{
    // Skewed reuse over the trace-declared live set: most accesses hit a
    // hot subset (the values an op chain is actively combining), the rest
    // sweep the full pool.  This degrades gracefully when the pool
    // exceeds the scratchpad instead of falling off a round-robin cliff.
    const u64 pool = std::max(1, trace_->liveCiphertexts);
    const u64 seq = nextCt_++;
    u64 h = seq * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    BufferRef ref;
    if ((h & 0xf) < 11) // ~70% of touches go to the 4 hottest buffers
        ref.id = kCtBase + (seq & 3);
    else
        ref.id = kCtBase + ((h >> 8) % pool);
    ref.write = write;
    return ref;
}

BufferRef
Lowering::plaintextBuffer(const TraceOp &op, int /*use*/)
{
    // Plaintext operands (BSGS matrix diagonals, masks, weights) are
    // distinct per use: they stream from memory, compressed by on-die
    // generation of encoded constants (ARK-style) when enabled.
    BufferRef ref;
    ref.id = kPtBase + static_cast<u64>(op.keyId) * 65536 +
             static_cast<u64>(nextPt_++ % 4096);
    // Unlike evaluation keys, plaintext operands are data (weights,
    // masks, matrix diagonals): read once at full size, never worth
    // caching.
    ref.bytes = static_cast<u64>(op.limbs * n_ * bytesCkks_);
    ref.write = false;
    ref.streaming = true;
    return ref;
}

BufferRef
Lowering::keyBuffer(u64 id, u64 bytes)
{
    BufferRef ref;
    ref.id = id;
    // On-the-fly generation (Section IV-B5, after ARK): the pseudorandom
    // key half expands from a seed and the structured half is produced by
    // on-die re-encryption.  Roughly a quarter of the key bytes move per
    // use, but the key never occupies scratchpad — it streams.
    if (opts_.onTheFlyKeyGen) {
        ref.bytes = (bytes * 2) / 5;
        ref.streaming = true;
    } else {
        ref.bytes = bytes;
    }
    ref.write = false;
    return ref;
}

void
Lowering::lowerOp(const TraceOp &op)
{
    switch (op.kind) {
      case OpKind::CkksAdd: {
        for (int c = 0; c < op.count; ++c) {
            const u64 w = 2ULL * op.limbs * n_ * wCkks_;
            auto in = ctBuffer(false);
            in.bytes = 2.0 * op.limbs * n_ * bytesCkks_;
            auto out = ctBuffer(true);
            out.bytes = in.bytes;
            emit(HwOp::Ewma, logN_, 2 * op.limbs, w, w, {in, out});
        }
        break;
      }
      case OpKind::CkksAddPlain: {
        for (int c = 0; c < op.count; ++c) {
            const u64 w = 1ULL * op.limbs * n_ * wCkks_;
            auto in = ctBuffer(false);
            in.bytes = 2.0 * op.limbs * n_ * bytesCkks_;
            auto pt = plaintextBuffer(op, c);
            emit(HwOp::Ewma, logN_, op.limbs, w, w, {in, pt});
        }
        break;
      }
      case OpKind::CkksMultPlain: {
        for (int c = 0; c < op.count; ++c) {
            const u64 w = 2ULL * op.limbs * n_ * wCkks_;
            auto in = ctBuffer(false);
            in.bytes = 2.0 * op.limbs * n_ * bytesCkks_;
            auto pt = plaintextBuffer(op, c);
            emit(HwOp::Ewmm, logN_, 2 * op.limbs, w, w, {in, pt});
        }
        break;
      }
      case OpKind::CkksMult:
        for (int c = 0; c < op.count; ++c)
            ckksMult(op);
        break;
      case OpKind::CkksRescale:
        for (int c = 0; c < op.count; ++c)
            ckksRescale(op);
        break;
      case OpKind::CkksRotate:
        for (int c = 0; c < op.count; ++c)
            ckksRotate(op, false);
        break;
      case OpKind::CkksConjugate:
        for (int c = 0; c < op.count; ++c)
            ckksRotate(op, true);
        break;
      case OpKind::CkksModRaise:
        for (int c = 0; c < op.count; ++c)
            ckksModRaise(op);
        break;
      case OpKind::TfhePbs:
        tfhePbs(op);
        break;
      case OpKind::TfheKeySwitch:
        tfheKeySwitch(op.count);
        break;
      case OpKind::TfheModSwitch: {
        // Rounding of n+1 words per LWE on the near-memory unit.
        const u64 w = static_cast<u64>(op.count) *
                      (trace_->tfheLweDim + 1);
        emit(HwOp::Reduce, 0, op.count, w, w);
        break;
      }
      case OpKind::TfheLinear:
        tfheLinear(op);
        break;
      case OpKind::SwitchExtract:
        switchExtract(op);
        break;
      case OpKind::SwitchRepack:
        switchRepack(op);
        break;
    }
}

void
Lowering::ckksKeySwitch(int limbs, int polys, u64 keyBufferBase)
{
    // Hybrid key switching at `limbs` active q limbs.
    sink_->beginPhase("key_switch");
    const int K = specialK_;
    const int digits = (limbs + alpha_ - 1) / alpha_;
    const u64 wordsPerLimb = n_ * wCkks_;

    // Input polynomial to coefficient form.
    emit(HwOp::Intt, logN_, limbs, limbs * wordsPerLimb,
         limbs * wordsPerLimb * logN_ / 2);

    for (int d = 0; d < digits; ++d) {
        const int dLimbs = std::min(alpha_, limbs - d * alpha_);
        const int targets = limbs + K - dLimbs;

        // Digit extraction scaling, then ModUp base conversion.
        emit(HwOp::EwScale, logN_, dLimbs, dLimbs * wordsPerLimb,
             dLimbs * wordsPerLimb);
        emit(HwOp::BconvMac, logN_, targets,
             (dLimbs + targets) * wordsPerLimb,
             static_cast<u64>(dLimbs) * targets * wordsPerLimb);

        // Raised digit to evaluation form.
        emit(HwOp::Ntt, logN_, limbs + K, (limbs + K) * wordsPerLimb,
             (limbs + K) * wordsPerLimb * logN_ / 2);

        // Inner product with the evaluation key digit.
        const u64 evkBytes = static_cast<u64>(
            2.0 * (limbs + K) * n_ * bytesCkks_);
        auto evk = keyBuffer(keyBufferBase + d, evkBytes);
        if (opts_.onTheFlyKeyGen) {
            // Regenerating the pseudorandom key half costs ALU work.
            const u64 genWork = (limbs + K) * wordsPerLimb;
            emit(HwOp::KeyGenOtf, logN_, limbs + K, genWork, genWork);
        }
        // The evk inner product is a multiply-accumulate; both UFC's
        // vector lanes and SHARP's BConv MAC arrays run it at full rate.
        const u64 ipWords = 2ULL * (limbs + K) * wordsPerLimb;
        emit(HwOp::BconvMac, logN_, 2 * (limbs + K), ipWords, 2 * ipWords,
             {evk});
    }

    // ModDown: both accumulator polys back to coefficient form, convert
    // the P part down, fold and return to evaluation form.
    const u64 accWords = static_cast<u64>(polys) * (limbs + K) *
                         wordsPerLimb;
    emit(HwOp::Intt, logN_, polys * (limbs + K), accWords,
         accWords * logN_ / 2);
    emit(HwOp::BconvMac, logN_, polys * limbs,
         static_cast<u64>(polys) * (K + limbs) * wordsPerLimb,
         static_cast<u64>(polys) * K * limbs * wordsPerLimb);
    emit(HwOp::EwScale, logN_, polys * limbs,
         static_cast<u64>(polys) * limbs * wordsPerLimb,
         static_cast<u64>(polys) * limbs * wordsPerLimb);
    emit(HwOp::Ntt, logN_, polys * limbs,
         static_cast<u64>(polys) * limbs * wordsPerLimb,
         static_cast<u64>(polys) * limbs * wordsPerLimb * logN_ / 2);
    sink_->endPhase();
}

void
Lowering::ckksMult(const TraceOp &op)
{
    const int limbs = op.limbs;
    const u64 wordsPerLimb = n_ * wCkks_;
    const double ctBytes = 2.0 * limbs * n_ * bytesCkks_;

    auto inA = ctBuffer(false);
    inA.bytes = ctBytes;
    auto inB = ctBuffer(false);
    inB.bytes = ctBytes;

    // Tensor product: 4 limb-wise multiplies and 1 addition.
    const u64 w = static_cast<u64>(limbs) * wordsPerLimb;
    emit(HwOp::Ewmm, logN_, 4 * limbs, 4 * w, 4 * w, {inA, inB});
    emit(HwOp::Ewma, logN_, limbs, w, w);

    // Relinearize the s^2 component.
    ckksKeySwitch(limbs, 2, kEvkBase);

    // Fold the key-switch output into (c0, c1).
    auto out = ctBuffer(true);
    out.bytes = ctBytes;
    emit(HwOp::Ewma, logN_, 2 * limbs, 2 * w, 2 * w, {out});
}

void
Lowering::ckksRescale(const TraceOp &op)
{
    const int limbs = op.limbs;
    const u64 wordsPerLimb = n_ * wCkks_;
    auto in = ctBuffer(false);
    in.bytes = 2.0 * limbs * n_ * bytesCkks_;
    auto out = ctBuffer(true);
    out.bytes = 2.0 * (limbs - 1) * n_ * bytesCkks_;

    emit(HwOp::Intt, logN_, 2 * limbs, 2ULL * limbs * wordsPerLimb,
         2ULL * limbs * wordsPerLimb * logN_ / 2, {in});
    const u64 w = 2ULL * (limbs - 1) * wordsPerLimb;
    emit(HwOp::Ewma, logN_, 2 * (limbs - 1), w, w);
    emit(HwOp::EwScale, logN_, 2 * (limbs - 1), w, w);
    emit(HwOp::Ntt, logN_, 2 * (limbs - 1), w, w * logN_ / 2, {out});
}

void
Lowering::ckksRotate(const TraceOp &op, bool conjugate)
{
    const int limbs = op.limbs;
    const u64 wordsPerLimb = n_ * wCkks_;
    const u64 w2 = 2ULL * limbs * wordsPerLimb;
    auto in = ctBuffer(false);
    in.bytes = 2.0 * limbs * n_ * bytesCkks_;

    if (opts_.autoViaNtt) {
        // Automorphism via NTT (Section IV-C2): iNTT with omega, NTT with
        // omega^k for both components; the c1 copy that feeds key
        // switching needs one more iNTT to coefficient form.
        emit(HwOp::Intt, logN_, 2 * limbs, w2, w2 * logN_ / 2, {in});
        emit(HwOp::NttAuto, logN_, 2 * limbs, w2, w2 * logN_ / 2);
        emit(HwOp::Intt, logN_, limbs, w2 / 2, w2 / 2 * logN_ / 2);
    } else {
        // Scheme-specific accelerators shuffle through the all-to-all NoC.
        emit(HwOp::Shuffle, logN_, 2 * limbs, w2, w2, {in});
        emit(HwOp::Intt, logN_, limbs, w2 / 2, w2 / 2 * logN_ / 2);
    }

    const u64 keyBase = conjugate ? (kGkBase + (1ULL << 20))
                                  : kGkBase + 64ULL * op.keyId;
    ckksKeySwitch(limbs, 2, keyBase);

    auto out = ctBuffer(true);
    out.bytes = 2.0 * limbs * n_ * bytesCkks_;
    emit(HwOp::Ewma, logN_, limbs, w2 / 2, w2 / 2, {out});
}

void
Lowering::ckksModRaise(const TraceOp &op)
{
    // Bootstrap ModRaise: base-extend both polys from 1 limb to `limbs`.
    const int limbs = op.limbs;
    const u64 wordsPerLimb = n_ * wCkks_;
    auto in = ctBuffer(false);
    in.bytes = 2.0 * n_ * bytesCkks_;
    auto out = ctBuffer(true);
    out.bytes = 2.0 * limbs * n_ * bytesCkks_;

    emit(HwOp::Intt, logN_, 2, 2 * wordsPerLimb,
         2 * wordsPerLimb * logN_ / 2, {in});
    emit(HwOp::BconvMac, logN_, 2 * limbs, 2ULL * limbs * wordsPerLimb,
         2ULL * (limbs - 1) * wordsPerLimb);
    emit(HwOp::Ntt, logN_, 2 * limbs, 2ULL * limbs * wordsPerLimb,
         2ULL * limbs * wordsPerLimb * logN_ / 2, {out});
}

int
Lowering::packFactor(u64 ringDim, int available) const
{
    if (!opts_.smallPolyPacking)
        return 1;
    // How many small polynomials fill the vector lanes (Figure 7).
    const int perLanes = static_cast<int>(
        std::max<u64>(1, opts_.totalVectorLanes / (ringDim * wTfhe_)));
    return std::max(1, std::min(available, perLanes));
}

void
Lowering::tfhePbs(const TraceOp &op)
{
    const u32 nLwe = trace_->tfheLweDim;
    const int l = trace_->tfheGadgetLevels;
    const u64 wordsPerPoly = nt_ * wTfhe_;

    // Parallelism selection (Section V-B): TvLP batches independent
    // bootstraps so the per-iteration RGSW key is fetched once; CoLP only
    // packs the 2l decomposed columns and needs a shuffle each iteration.
    const int batch = (opts_.parallelism == Parallelism::TvLP)
                          ? packFactor(nt_, op.count)
                          : 1; // CoLP packs columns, not test vectors
    const int groups = (op.count + batch - 1) / batch;

    // Modulus switch and test-vector setup on the LWE unit.
    emit(HwOp::Reduce, 0, op.count,
         static_cast<u64>(op.count) * (nLwe + 1),
         static_cast<u64>(op.count) * (nLwe + 1));

    // Loop structure encodes the parallelism choice (Section V-B):
    // - TvLP runs blind-rotation iteration i for every in-flight
    //   bootstrap before advancing to i+1, so each RGSW key element is
    //   fetched once per iteration regardless of the batch count — the
    //   low-bandwidth property the paper prioritizes TvLP for.
    // - CoLP runs each bootstrap to completion, packing only the 2l
    //   decomposed columns; the full bootstrapping key is re-walked per
    //   bootstrap, which is the memory overhead Figure 15 exposes.
    const bool tvlp = opts_.parallelism == Parallelism::TvLP;

    // One blind-rotation iteration: decompose the accumulator, NTT the
    // 2l digit polynomials, monomial-multiply by the X^a_i evaluation
    // (Section IV-C3), MAC against the RGSW rows, and return to
    // coefficient form.
    const auto emitIter = [&](u32 i, int b, bool chargeKey) {
        const u64 digitWords = 2ULL * l * b * wordsPerPoly;
        emit(HwOp::Decomp, logNt_, 2 * l * b, digitWords, digitWords);

        // CoLP packs the 2l columns into the wide datapath but must
        // shuffle them into the continuous layout first (V-B).
        if (opts_.parallelism == Parallelism::CoLP) {
            emit(HwOp::Shuffle, logNt_, 2 * l * b, digitWords,
                 digitWords);
        }
        emit(HwOp::Ntt, logNt_, 2 * l * b, digitWords,
             digitWords * logNt_ / 2);
        emit(HwOp::MonomialMul, logNt_, 2 * l * b, digitWords,
             digitWords);

        const u64 macWords = 4ULL * l * b * wordsPerPoly;
        if (chargeKey) {
            // Bootstrapping keys are not seed-expanded on die (the
            // on-the-fly units target the SIMD-scheme evks/twiddles).
            isa::BufferRef btk;
            btk.id = kBtkBase + i;
            btk.bytes = static_cast<u64>(4.0 * l * nt_ * bytesTfhe_);
            emit(HwOp::Ewmm, logNt_, 4 * l * b, macWords, macWords,
                 {btk});
        } else {
            emit(HwOp::Ewmm, logNt_, 4 * l * b, macWords, macWords);
        }
        emit(HwOp::Ewma, logNt_, 4 * l * b, macWords, macWords);

        const u64 accWords = 2ULL * b * wordsPerPoly;
        emit(HwOp::Intt, logNt_, 2 * b, accWords,
             accWords * logNt_ / 2);
        emit(HwOp::Ewma, logNt_, 2 * b, accWords, accWords);
    };

    sink_->beginPhase("blind_rotate");
    if (tvlp && groups > 0) {
        // Under TvLP only the first group of each iteration touches the
        // key buffer; the remaining full groups issue byte-identical
        // streaming-only bodies, which the sink may fold into one
        // structural repeat (Program loops, compiler/bytecode.h)
        // instead of receiving them unrolled.
        const int fullGroups = op.count / batch;
        const int ragged = op.count - fullGroups * batch;
        for (int o = 0; o < static_cast<int>(nLwe); ++o) {
            const u32 i = static_cast<u32>(o);
            emitIter(i, std::min(batch, op.count), true);
            repeat(static_cast<u64>(std::max(0, fullGroups - 1)),
                   [&] { emitIter(i, batch, false); });
            if (ragged > 0 && groups > 1)
                emitIter(i, ragged, false);
        }
    } else if (!tvlp) {
        // CoLP re-walks the full bootstrapping key per bootstrap (the
        // memory overhead Figure 15 exposes), so every iteration
        // charges a different key element and nothing folds.
        for (int g = 0; g < groups; ++g) {
            const int b = std::min(batch, op.count - g * batch);
            for (int in = 0; in < static_cast<int>(nLwe); ++in)
                emitIter(static_cast<u32>(in), b, true);
        }
    }
    sink_->endPhase();

    // Extraction on the near-memory unit, then LWE key switch.
    emit(HwOp::Extract, logNt_, op.count,
         static_cast<u64>(op.count) * nt_,
         static_cast<u64>(op.count) * nt_);
    tfheKeySwitch(op.count);
}

void
Lowering::tfheKeySwitch(int count)
{
    const u32 nLwe = trace_->tfheLweDim;
    const int dks = trace_->tfheKsLevels;
    // Decompose N coefficients into dks digits, multiply-accumulate
    // against the (n+1)-wide key rows, reduce on the LWEU.
    const u64 decompWork = static_cast<u64>(count) * nt_ * dks;
    emit(HwOp::Decomp, logNt_, count, decompWork, decompWork);

    const u64 kskBytes = static_cast<u64>(
        nt_ * dks * (nLwe + 1) * bytesTfhe_);
    auto ksk = keyBuffer(kKskBase, kskBytes);
    const u64 macWork = static_cast<u64>(count) * nt_ * dks * (nLwe + 1);
    emit(HwOp::BconvMac, logNt_, count, macWork / 16, macWork, {ksk});
    emit(HwOp::Reduce, 0, count, static_cast<u64>(count) * (nLwe + 1),
         static_cast<u64>(count) * (nLwe + 1));
}

void
Lowering::tfheLinear(const TraceOp &op)
{
    const u32 nLwe = trace_->tfheLweDim;
    const u64 work = static_cast<u64>(op.count) *
                     std::max(1, op.fanIn) * (nLwe + 1);
    emit(HwOp::Ewma, 0, op.count, work, work);
}

void
Lowering::switchExtract(const TraceOp &op)
{
    // RLWE -> LWE extraction happens on the LWEU reading distributed
    // scratchpads.  The source polynomial is read once; each extracted
    // LWE is an index window into it (the ring was already switched down
    // by the preceding SlotToCoeff / modulus-switch steps), and the TFHE
    // key switch then normalizes the parameters.
    auto in = ctBuffer(false);
    in.bytes = 2.0 * n_ * bytesCkks_;
    const u64 w = n_ * wCkks_ +
                  static_cast<u64>(op.count) * (trace_->tfheLweDim + 1);
    emit(HwOp::Extract, logN_, op.count, w, w, {in});
    tfheKeySwitch(op.count);
}

void
Lowering::switchRepack(const TraceOp &op)
{
    // Repacking (Section II-D): homomorphic linear transform in the SIMD
    // scheme — a BSGS sweep of rotations and plaintext multiplies —
    // followed by a key switch; modeled with the CKKS lowering itself.
    const int limbs = std::max(2, op.limbs);
    const int rot = 2 * static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(std::max(1, op.count)))));
    for (int r = 0; r < rot; ++r) {
        TraceOp rotOp{OpKind::CkksRotate, limbs, 1, 0, r + 1};
        lowerOp(rotOp);
        TraceOp pm{OpKind::CkksMultPlain, limbs, 1, 0, r + 1};
        lowerOp(pm);
    }
    TraceOp rs{OpKind::CkksRescale, limbs, 1, 0, 0};
    lowerOp(rs);
}

} // namespace compiler
} // namespace ufc
