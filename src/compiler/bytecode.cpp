/**
 * @file
 * Bytecode compiler implementation: ProgramBuilder (an InstSink), the
 * fusion pass, the fused-op legality verifier and the disassembler.
 */

#include "compiler/bytecode.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <iomanip>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/error.h"
#include "sim/engine.h"
#include "trace/serialize.h"

namespace ufc {
namespace compiler {

namespace {

std::atomic<u64> gLivePrograms{0};
std::atomic<u64> gPeakLivePrograms{0};

} // namespace

void
detail::LiveCounter::bump() noexcept
{
    const u64 live =
        gLivePrograms.fetch_add(1, std::memory_order_relaxed) + 1;
    u64 peak = gPeakLivePrograms.load(std::memory_order_relaxed);
    while (peak < live &&
           !gPeakLivePrograms.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
}

detail::LiveCounter::~LiveCounter()
{
    gLivePrograms.fetch_sub(1, std::memory_order_relaxed);
}

u64
livePrograms()
{
    return gLivePrograms.load(std::memory_order_relaxed);
}

u64
peakLivePrograms()
{
    return gPeakLivePrograms.load(std::memory_order_relaxed);
}

void
resetPeakLivePrograms()
{
    gPeakLivePrograms.store(gLivePrograms.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
}

u64
phaseCacheKeyBase(u64 segContentHash, int prefetchWindow, u64 maxCycles)
{
    u64 h = trace::detail::kFnvOffset;
    trace::detail::mix64(h, segContentHash);
    trace::detail::mix64(
        h, static_cast<u64>(static_cast<i64>(prefetchWindow)));
    trace::detail::mix64(h, maxCycles);
    return h;
}

const char *
fuseKindName(FuseKind kind)
{
    switch (kind) {
      case FuseKind::None: return "none";
      case FuseKind::KeySwitch: return "key_switch";
      case FuseKind::BlindRotate: return "blind_rotate";
      case FuseKind::Generic: return "generic";
    }
    return "unknown";
}

ProgramBuilder::ProgramBuilder(const sim::MachinePerf *perf, Program *out)
    : perf_(perf), out_(out)
{
    out_->hbmBytesPerCycle = perf_->hbmBytesPerCycle();
    out_->scratchpadBytes = perf_->scratchpadBytes();
    // Per-machine constants, hoisted out of the per-instruction path
    // (issue() runs a few hundred thousand times per compile).
    fillCycles_ = perf_->pipelineFillCycles();
    hbmBpc_ = out_->hbmBytesPerCycle;
}

u32
ProgramBuilder::slotFor(u64 id)
{
    const auto it = slots_.find(id);
    if (it != slots_.end())
        return it->second;
    const u32 slot = static_cast<u32>(slots_.size());
    slots_.emplace(id, slot);
    return slot;
}

void
ProgramBuilder::issue(const isa::HwInst &inst)
{
    BcInst b;
    // Pure functions of (inst, const machine config): the values the IR
    // engine would compute at issue time, captured once.
    b.computeCycles = perf_->computeCycles(inst);
    b.busyLaneCycles = b.computeCycles * perf_->laneFraction(inst);
    b.nocCycles = perf_->nocCycles(inst);
    b.fillCycles = fillCycles_;
    b.op = static_cast<u8>(inst.op);
    b.resource = static_cast<u8>(perf_->resourceFor(inst));

    bool cached = false;
    for (const auto &ref : inst.buffers) {
        if (!ref.transient && !ref.streaming) {
            cached = true;
            break;
        }
    }

    if (!cached) {
        // No scratchpad interaction: the whole memory phase folds into
        // two constants.  Transient refs contribute exactly nothing in
        // the IR engine (access() returns 0, hit accounting excludes
        // them), and the streamed-bytes sum keeps operand order, so the
        // compile-time accumulation is bit-identical to the runtime one.
        b.kind = BcKind::Stream;
        double fetch = 0.0;
        for (const auto &ref : inst.buffers)
            if (!ref.transient)
                fetch += static_cast<double>(ref.bytes);
        b.staticFetchBytes = fetch;
        // Same division the engine performs (not a multiply-by-inverse).
        b.staticMemCycles = fetch / hbmBpc_;
    } else {
        b.kind = BcKind::Mem;
        b.bufBegin = static_cast<u32>(out_->bufs.size());
        u32 count = 0;
        for (const auto &ref : inst.buffers) {
            if (ref.transient)
                continue; // provably a no-op in the IR engine
            if (ref.streaming && ref.bytes == 0)
                continue; // adds 0.0 everywhere: also a no-op
            BcBuf buf;
            buf.id = ref.id;
            buf.bytes = static_cast<double>(ref.bytes);
            buf.write = ref.write;
            buf.streamed = ref.streaming;
            if (!ref.streaming)
                buf.slot = slotFor(ref.id);
            out_->bufs.push_back(buf);
            ++count;
        }
        UFC_EXPECT(count <= 0xffff, ConfigError,
                   "instruction with " << count
                       << " operand buffers exceeds the bytecode limit");
        b.bufCount = static_cast<u16>(count);
    }

    out_->code.push_back(b);
    out_->debug.push_back(
        BcDebug{inst.logDegree, inst.batch, inst.words, inst.work});
}

void
ProgramBuilder::beginPhase(const char *name)
{
    const std::string key(name ? name : "");
    u32 idx;
    const auto it = phaseNameIdx_.find(key);
    if (it != phaseNameIdx_.end()) {
        idx = it->second;
    } else {
        idx = static_cast<u32>(out_->phaseNames.size());
        out_->phaseNames.push_back(key);
        phaseNameIdx_.emplace(key, idx);
    }
    out_->phaseEvents.push_back(
        PhaseEvent{out_->code.size(), static_cast<i32>(idx)});
}

void
ProgramBuilder::endPhase()
{
    out_->phaseEvents.push_back(
        PhaseEvent{out_->code.size(), PhaseEvent::kEnd});
}

bool
ProgramBuilder::beginRepeat(u64 trips)
{
    // Nested offers are refused: the inner producer unrolls, and the
    // outer fold (if any) still sees byte-identical iterations.
    if (repeatOpen_ || trips < 2)
        return false;
    repeatOpen_ = true;
    repeatTrips_ = trips;
    repeatStart_ = out_->code.size();
    repeatEvents_ = out_->phaseEvents.size();
    return true;
}

void
ProgramBuilder::endRepeat()
{
    UFC_EXPECT(repeatOpen_, ConfigError,
               "endRepeat without a matching accepted beginRepeat");
    UFC_EXPECT(out_->phaseEvents.size() == repeatEvents_, ConfigError,
               "phase markers inside a folded repeat body (inst#"
                   << repeatStart_ << "): the marker would fire once but "
                      "the body executes " << repeatTrips_ << " times");
    repeatOpen_ = false;

    const u64 end = out_->code.size();
    if (end == repeatStart_)
        return; // empty body: repeating nothing is nothing

    bool pure = true;
    for (u64 i = repeatStart_; i < end; ++i) {
        if (out_->code[i].kind != BcKind::Stream) {
            pure = false;
            break;
        }
    }
    if (!pure) {
        // A body with cached operands has LRU-dependent memory cost, so
        // a structural loop would diverge from the unrolled stream.
        // Unroll here instead: BcInst/BcDebug records are value types
        // and copies may share the (read-only) BcBuf ranges.
        const u64 bodyLen = end - repeatStart_;
        for (u64 t = 1; t < repeatTrips_; ++t) {
            for (u64 i = 0; i < bodyLen; ++i) {
                out_->code.push_back(out_->code[repeatStart_ + i]);
                out_->debug.push_back(out_->debug[repeatStart_ + i]);
            }
        }
        return;
    }

    BcLoop lp;
    lp.end = end;
    lp.bodyLen = static_cast<u32>(end - repeatStart_);
    lp.trips = repeatTrips_;
    out_->loops.push_back(lp); // emission order keeps `loops` sorted
}

/**
 * Digest of everything that determines how code[begin, end) executes on
 * this Program's machine: the pre-computed cost terms, the packed flag
 * fields, Mem operand records (slot/bytes/flags — buffer ids are
 * diagnostics only and deliberately excluded), and the loop rows inside
 * the segment with `end` re-based to the segment so position in the
 * program does not matter.  Doubles are hashed by bit pattern; BcInst is
 * never hashed as raw memory (it has tail padding).
 */
u64
segmentContentHash(const Program &p, u64 begin, u64 end)
{
    using trace::detail::mix64;
    const auto bits = [](double v) { return std::bit_cast<u64>(v); };
    u64 h = trace::detail::kFnvOffset;
    mix64(h, bits(p.hbmBytesPerCycle));
    mix64(h, bits(p.scratchpadBytes));
    mix64(h, static_cast<u64>(p.spadSlots));
    mix64(h, end - begin);
    for (u64 i = begin; i < end; ++i) {
        const BcInst &b = p.code[static_cast<size_t>(i)];
        // Fold the instruction's fields into one word with position-
        // distinguishing rotations, then apply a single strong mix:
        // this runs for every instruction of every phase region on
        // every compile, and per-field mixing tripled compile time.
        u64 acc = bits(b.computeCycles);
        acc = std::rotl(acc, 9) ^ bits(b.busyLaneCycles);
        acc = std::rotl(acc, 9) ^ bits(b.nocCycles);
        acc = std::rotl(acc, 9) ^ bits(b.fillCycles);
        acc = std::rotl(acc, 9) ^ bits(b.staticFetchBytes);
        acc = std::rotl(acc, 9) ^ bits(b.staticMemCycles);
        acc = std::rotl(acc, 9) ^ ((static_cast<u64>(b.runLen) << 24) |
                                   (static_cast<u64>(b.op) << 16) |
                                   (static_cast<u64>(b.resource) << 8) |
                                   (static_cast<u64>(b.kind) << 4) |
                                   static_cast<u64>(b.fuse));
        mix64(h, acc);
        if (b.kind == BcKind::Mem) {
            mix64(h, static_cast<u64>(b.bufCount));
            for (u16 k = 0; k < b.bufCount; ++k) {
                const BcBuf &buf =
                    p.bufs[b.bufBegin + static_cast<u32>(k)];
                u64 ba = bits(buf.bytes);
                ba = std::rotl(ba, 9) ^ static_cast<u64>(buf.slot);
                ba = std::rotl(ba, 9) ^ ((buf.write ? 2u : 0u) |
                                         (buf.streamed ? 1u : 0u));
                mix64(h, ba);
            }
        }
    }
    for (const BcLoop &lp : p.loops) {
        const u64 start = lp.end - lp.bodyLen;
        // Loops never straddle phase markers (bc-loop-invariant), so a
        // loop is either fully inside the segment or fully outside.
        if (start >= begin && lp.end <= end) {
            mix64(h, lp.end - begin);
            mix64(h, static_cast<u64>(lp.bodyLen));
            mix64(h, lp.trips);
        }
    }
    return h;
}

namespace {

/** Record the top-level phase regions worth memoizing (PhaseSegment).
 *  Bounds only — content digests are computed on demand by the engine
 *  (segmentContentHash), so compiling never pays for hashing. */
void
computeSegments(Program &p)
{
    int depth = 0;
    u64 openInst = 0;
    i32 openName = PhaseEvent::kEnd;
    for (const auto &ev : p.phaseEvents) {
        if (ev.name == PhaseEvent::kEnd) {
            if (depth > 0 && --depth == 0 && ev.inst > openInst &&
                ev.inst - openInst >= kMinSegmentInsts) {
                p.segments.push_back(
                    PhaseSegment{openInst, ev.inst, openName});
            }
        } else {
            if (depth == 0) {
                openInst = ev.inst;
                openName = ev.name;
            }
            ++depth;
        }
    }
}

} // namespace

void
ProgramBuilder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_->spadSlots = static_cast<u32>(slots_.size());
    fuse();
    computeSegments(*out_);
}

namespace {

/** Innermost fusion context: "key_switch"/"blind_rotate" anywhere on the
 *  open-phase stack wins over the generic tag. */
FuseKind
classifyRun(const std::vector<i32> &stack,
            const std::vector<std::string> &names)
{
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const std::string &name = names[static_cast<size_t>(*it)];
        if (name == "key_switch")
            return FuseKind::KeySwitch;
        if (name == "blind_rotate")
            return FuseKind::BlindRotate;
    }
    return FuseKind::Generic;
}

} // namespace

void
ProgramBuilder::fuse()
{
    auto &code = out_->code;
    const auto &events = out_->phaseEvents;

    // boundary[i] == a phase marker fires immediately before inst i, or
    // a folded loop starts/ends there (the executor's loop-back check
    // fires between instructions, so a fused run must not straddle it).
    std::vector<u8> boundary(code.size() + 1, 0);
    for (const auto &ev : events)
        boundary[static_cast<size_t>(ev.inst)] = 1;
    for (const auto &lp : out_->loops) {
        boundary[static_cast<size_t>(lp.end)] = 1;
        boundary[static_cast<size_t>(lp.end - lp.bodyLen)] = 1;
    }

    // Replay the phase events alongside the scan so each run head knows
    // its enclosing phase (fusion context tag).
    std::vector<i32> stack;
    size_t ev = 0;
    size_t i = 0;
    while (i < code.size()) {
        while (ev < events.size() && events[ev].inst == i) {
            if (events[ev].name == PhaseEvent::kEnd) {
                if (!stack.empty())
                    stack.pop_back();
            } else {
                stack.push_back(events[ev].name);
            }
            ++ev;
        }
        if (code[i].kind != BcKind::Stream) {
            ++i;
            continue;
        }
        // Maximal run of Stream insts with no interior phase marker.
        size_t j = i + 1;
        while (j < code.size() && code[j].kind == BcKind::Stream &&
               !boundary[j] && (j - i) < 0xffff)
            ++j;
        if (j - i >= 2) {
            code[i].runLen = static_cast<u16>(j - i);
            code[i].fuse = classifyRun(stack, out_->phaseNames);
            ++out_->fusedRuns;
            out_->fusedInsts += j - i;
        }
        i = j; // no events strictly inside (i, j) by construction
    }
}

namespace {

/** Sizing pre-pass: counts the records the real lowering will emit so
 *  the Program vectors can be reserved exactly — growth reallocations
 *  (copy + fresh-page faults) otherwise dominate compile time.  Accepts
 *  repeat folds like the builder, so folded bodies are counted once. */
struct SizingSink final : isa::InstSink
{
    u64 insts = 0;
    u64 bufs = 0;

    void
    issue(const isa::HwInst &inst) override
    {
        ++insts;
        bool cached = false;
        for (const auto &ref : inst.buffers) {
            if (!ref.transient && !ref.streaming) {
                cached = true;
                break;
            }
        }
        if (!cached)
            return;
        for (const auto &ref : inst.buffers) {
            if (ref.transient)
                continue;
            if (ref.streaming && ref.bytes == 0)
                continue;
            ++bufs;
        }
    }
    bool beginRepeat(u64) override { return true; }
};

} // namespace

Program
compileTrace(const trace::Trace &tr, const LoweringOptions &opts,
             const sim::MachinePerf &perf, const std::string &machineName,
             analysis::DiagnosticReport *lint)
{
    Program p;
    p.workload = tr.name;
    p.machine = machineName;
    p.traceHash = trace::contentHash(tr);
    {
        // No lint and no cost model on the sizing pass; the verifying
        // pass below sees the identical stream.  The counts are a
        // reservation hint only — an undercount (e.g. a future builder
        // unrolling an impure repeat the sizing sink folded) just means
        // one vector growth, not an error.
        SizingSink sizing;
        LoweringOptions sopts = opts;
        sopts.lint = nullptr;
        Lowering presize(&tr, sopts, &sizing);
        presize.run();
        p.code.reserve(sizing.insts);
        p.debug.reserve(sizing.insts);
        p.bufs.reserve(sizing.bufs);
    }
    ProgramBuilder builder(&perf, &p);
    LoweringOptions lopts = opts;
    lopts.lint = lint;
    Lowering lowering(&tr, lopts, &builder);
    lowering.run();
    builder.finish();
    return p;
}

namespace {

/**
 * TraceSink chaining TraceReader -> Lowering -> ProgramBuilder: each
 * validated op lowers as soon as its line parses, so memory held is the
 * reader's partial line plus the marker queue — never the op vector.
 * Enforces the chunk-protocol restrictions documented on
 * compileTraceStream (header first, markers before their ops).
 */
class StreamingCompileSink final : public trace::TraceSink
{
  public:
    StreamingCompileSink(Program *out, const LoweringOptions &opts,
                         const sim::MachinePerf &perf,
                         const StreamOpCheck &opCheck)
        : out_(out), opts_(opts), builder_(&perf, out),
          opCheck_(opCheck)
    {
    }

    void
    onHeader(const trace::Trace &header) override
    {
        UFC_EXPECT(!lowering_, TraceError,
                   "streamed trace '"
                       << header_.name
                       << "': header line after op/phase lines (the "
                          "streaming compiler derives lowering geometry "
                          "from the header before the first op; "
                          "re-serialize with writeTrace)");
        header_ = header;
    }

    void
    onPhase(const trace::PhaseMark &mark) override
    {
        hasher_.phase(mark);
        ensureLowering();
        UFC_EXPECT(mark.opIndex >= opIdx_, TraceError,
                   "streamed trace '"
                       << header_.name << "': phase marker for op "
                       << mark.opIndex << " arrived after op "
                       << (opIdx_ - 1)
                       << " was already compiled (markers must precede "
                          "their ops in a streamed trace)");
        pending_.push_back(mark);
    }

    void
    onOp(const trace::TraceOp &op) override
    {
        hasher_.op(op);
        if (opCheck_)
            opCheck_(header_, op);
        ensureLowering();
        while (!pending_.empty() && pending_.front().opIndex <= opIdx_) {
            lowering_->streamMark(pending_.front());
            pending_.pop_front();
        }
        lowering_->streamOp(op);
        ++opIdx_;
    }

    void
    onEnd(const trace::Trace &header) override
    {
        // A header line after the last op refires onHeader only at the
        // next op/phase event, so catch the tail case here: geometry
        // already fed the lowering and must not change silently.
        if (lowering_) {
            UFC_EXPECT(sameHeader(header, header_), TraceError,
                       "streamed trace '"
                           << header_.name
                           << "': header line after op/phase lines (the "
                              "streaming compiler derives lowering "
                              "geometry from the header before the first "
                              "op; re-serialize with writeTrace)");
        } else {
            header_ = header;
        }
        ensureLowering();
        while (!pending_.empty()) {
            lowering_->streamMark(pending_.front());
            pending_.pop_front();
        }
        lowering_->finishStream();
        builder_.finish();
        out_->workload = header_.name;
        hasher_.header(header_);
        out_->traceHash = hasher_.finish();
    }

  private:
    static bool
    sameHeader(const trace::Trace &a, const trace::Trace &b)
    {
        return a.name == b.name && a.ckksRingDim == b.ckksRingDim &&
               a.ckksLevels == b.ckksLevels &&
               a.ckksSpecial == b.ckksSpecial &&
               a.ckksDnum == b.ckksDnum &&
               a.ckksLimbBits == b.ckksLimbBits &&
               a.tfheRingDim == b.tfheRingDim &&
               a.tfheLweDim == b.tfheLweDim &&
               a.tfheGadgetLevels == b.tfheGadgetLevels &&
               a.tfheKsLevels == b.tfheKsLevels &&
               a.tfheLimbBits == b.tfheLimbBits &&
               a.liveCiphertexts == b.liveCiphertexts;
    }

    void
    ensureLowering()
    {
        if (lowering_)
            return;
        // header_ is a stable member: the Lowering keeps the pointer for
        // its whole life (it reads liveCiphertexts per ctBuffer call).
        lowering_.emplace(&header_, opts_, &builder_);
    }

    Program *out_;
    LoweringOptions opts_;
    ProgramBuilder builder_;
    StreamOpCheck opCheck_;
    trace::Trace header_; ///< header fields only (ops/phases empty)
    trace::ContentHasher hasher_;
    std::optional<Lowering> lowering_;
    std::deque<trace::PhaseMark> pending_; ///< marks not yet fired
    u64 opIdx_ = 0;                        ///< ops lowered so far
};

} // namespace

Program
compileTraceStream(std::istream &is, const LoweringOptions &opts,
                   const sim::MachinePerf &perf,
                   const std::string &machineName,
                   analysis::DiagnosticReport *lint,
                   const StreamOpCheck &opCheck, std::size_t chunkBytes,
                   std::size_t *peakBufferedBytes)
{
    UFC_EXPECT(chunkBytes > 0, ConfigError,
               "compileTraceStream: chunkBytes must be positive");
    Program p;
    p.machine = machineName;
    LoweringOptions lopts = opts;
    lopts.lint = lint;
    StreamingCompileSink sink(&p, lopts, perf, opCheck);
    trace::TraceReader reader(&sink);
    std::vector<char> chunk(chunkBytes);
    while (!reader.done() && is) {
        is.read(chunk.data(),
                static_cast<std::streamsize>(chunk.size()));
        const auto got = static_cast<std::size_t>(is.gcount());
        if (got == 0)
            break;
        reader.feed(chunk.data(), got);
    }
    reader.finish();
    if (peakBufferedBytes)
        *peakBufferedBytes = reader.peakBufferedBytes();
    return p;
}

std::vector<SlotAccess>
slotAccesses(const Program &p)
{
    UFC_EXPECT(!p.composed(), ConfigError,
               "slotAccesses: composed Program '"
                   << p.workload
                   << "' has no single scratchpad; export each part");
    std::vector<SlotAccess> out;
    for (u64 i = 0; i < p.code.size(); ++i) {
        const BcInst &inst = p.code[i];
        if (inst.kind != BcKind::Mem)
            continue;
        const u64 end = static_cast<u64>(inst.bufBegin) + inst.bufCount;
        for (u64 b = inst.bufBegin; b < end && b < p.bufs.size(); ++b) {
            const BcBuf &buf = p.bufs[b];
            if (buf.slot == BcBuf::kNoSlot || buf.streamed)
                continue;
            out.push_back(
                SlotAccess{i, buf.slot, buf.id, buf.bytes, buf.write});
        }
    }
    return out;
}

namespace {

void
addFinding(analysis::DiagnosticReport &out, const char *rule,
           std::ptrdiff_t inst, const std::string &message,
           const std::string &hint)
{
    analysis::Diagnostic d;
    d.severity = analysis::Severity::Error;
    d.rule = rule;
    d.message = message;
    d.hint = hint;
    d.opIndex = inst;
    out.add(d);
}

} // namespace

void
verifyProgram(const Program &program, analysis::DiagnosticReport &out)
{
    for (const auto &part : program.parts)
        verifyProgram(part, out);

    std::vector<u8> boundary(program.code.size() + 1, 0);
    for (const auto &ev : program.phaseEvents)
        if (ev.inst <= program.code.size())
            boundary[static_cast<size_t>(ev.inst)] = 1;

    // Folded loops: bounds, ordering, purity and phase containment.
    u64 prevEnd = 0;
    for (size_t li = 0; li < program.loops.size(); ++li) {
        const BcLoop &lp = program.loops[li];
        const std::ptrdiff_t at =
            static_cast<std::ptrdiff_t>(lp.end) - lp.bodyLen;
        if (lp.bodyLen == 0 || lp.trips < 2 ||
            lp.end > program.code.size() || lp.bodyLen > lp.end) {
            std::ostringstream os;
            os << "loop#" << li << " (end=" << lp.end << " body="
               << lp.bodyLen << " trips=" << lp.trips
               << ") is degenerate or out of bounds ("
               << program.code.size() << " instructions)";
            addFinding(out, "bc-loop-invariant", at, os.str(),
                       "folded repeats need a non-empty in-bounds body "
                       "and at least two trips");
            continue;
        }
        const u64 start = lp.end - lp.bodyLen;
        if (start < prevEnd) {
            std::ostringstream os;
            os << "loop#" << li << " [" << start << ", " << lp.end
               << ") overlaps or is unsorted against the previous loop "
               << "(ends at " << prevEnd << ")";
            addFinding(out, "bc-loop-invariant",
                       static_cast<std::ptrdiff_t>(start), os.str(),
                       "loops must be disjoint and sorted by end so the "
                       "executor's single cursor replays them");
        }
        prevEnd = lp.end;
        for (u64 k = start; k < lp.end; ++k) {
            if (program.code[k].kind == BcKind::Mem) {
                std::ostringstream os;
                os << "loop#" << li << " [" << start << ", " << lp.end
                   << ") body contains inst#" << k << " ("
                   << isa::opName(
                          static_cast<isa::HwOp>(program.code[k].op))
                   << ") with a cached scratchpad operand";
                addFinding(out, "bc-loop-invariant",
                           static_cast<std::ptrdiff_t>(k), os.str(),
                           "re-executing a scratchpad-dependent body is "
                           "not equivalent to the unrolled stream; the "
                           "builder must unroll such repeats");
                break;
            }
        }
        for (const auto &ev : program.phaseEvents) {
            if (ev.inst > start && ev.inst < lp.end) {
                std::ostringstream os;
                os << "loop#" << li << " [" << start << ", " << lp.end
                   << ") contains a phase marker before inst#" << ev.inst;
                addFinding(out, "bc-loop-invariant",
                           static_cast<std::ptrdiff_t>(ev.inst), os.str(),
                           "a marker inside a repeated body would fire "
                           "once but the body executes every trip");
                break;
            }
        }
        // Loop edges break fused runs exactly like phase markers.
        if (lp.end <= program.code.size()) {
            boundary[static_cast<size_t>(start)] = 1;
            boundary[static_cast<size_t>(lp.end)] = 1;
        }
    }

    for (size_t i = 0; i < program.code.size(); ++i) {
        const BcInst &head = program.code[i];
        if (head.runLen <= 1)
            continue;
        const size_t end = i + head.runLen;
        if (end > program.code.size()) {
            std::ostringstream os;
            os << "fused run of " << head.runLen << " at inst#" << i
               << " overruns the program (" << program.code.size()
               << " instructions)";
            addFinding(out, "bc-fuse-phase-span",
                       static_cast<std::ptrdiff_t>(i), os.str(),
                       "re-run the fusion pass; runs must stay in bounds");
            continue;
        }
        for (size_t k = i; k < end; ++k) {
            if (program.code[k].kind == BcKind::Mem) {
                std::ostringstream os;
                os << "fused run [" << i << ", " << end << ") contains "
                   << "inst#" << k << " ("
                   << isa::opName(static_cast<isa::HwOp>(
                          program.code[k].op))
                   << ") with a cached scratchpad operand";
                addFinding(out, "bc-fuse-cached-operand",
                           static_cast<std::ptrdiff_t>(i), os.str(),
                           "scratchpad-dependent instructions must break "
                           "the run (their memory cost depends on LRU "
                           "state)");
                break;
            }
        }
        for (size_t k = i + 1; k < end; ++k) {
            if (boundary[k]) {
                std::ostringstream os;
                os << "fused run [" << i << ", " << end << ") crosses a "
                   << "phase marker or loop edge before inst#" << k;
                addFinding(out, "bc-fuse-phase-span",
                           static_cast<std::ptrdiff_t>(i), os.str(),
                           "phase markers and loop edges must only fire "
                           "at run boundaries so timeline replay and "
                           "loop-back checks stay exact");
                break;
            }
        }
    }
}

void
disassemble(const Program &program, std::ostream &os)
{
    os << "program " << program.workload << " machine="
       << program.machine << " hash=" << std::hex << std::showbase
       << program.traceHash << std::dec << std::noshowbase << "\n";
    if (program.composed()) {
        os << "  composed: pcie_bytes=" << program.pcieBytes
           << " pcie_transfers=" << program.pcieTransfers << " parts="
           << program.parts.size() << "\n";
        for (const auto &part : program.parts) {
            if (part.code.empty() && part.machine.empty()) {
                os << "part <empty>\n";
                continue;
            }
            disassemble(part, os);
        }
        return;
    }
    os << "  insts=" << program.code.size() << " bufs="
       << program.bufs.size() << " slots=" << program.spadSlots
       << " spad_bytes=" << program.scratchpadBytes << " hbm_Bpc="
       << program.hbmBytesPerCycle << " fused_runs="
       << program.fusedRuns << " fused_insts=" << program.fusedInsts
       << " loops=" << program.loops.size() << " executed="
       << program.totalInsts() << "\n";
    if (!program.segments.empty()) {
        // Phase-cache debuggability: the content digest of each
        // memoizable region plus the cache-key base at the default run
        // parameters (prefetchWindow=kDefaultPrefetchWindow, no
        // maxCycles watchdog); the engine folds its entry state on top.
        os << "  segments=" << program.segments.size()
           << " (phase cache; key base at window="
           << sim::CycleEngine::kDefaultPrefetchWindow
           << " maxCycles=0)\n";
        for (size_t s = 0; s < program.segments.size(); ++s) {
            const PhaseSegment &seg = program.segments[s];
            const char *name =
                seg.name >= 0
                    ? program.phaseNames[static_cast<size_t>(seg.name)]
                          .c_str()
                    : "?";
            const u64 digest =
                segmentContentHash(program, seg.begin, seg.end);
            os << "    seg#" << s << " phase=" << name << " ["
               << seg.begin << ", " << seg.end << ") phase_hash="
               << std::hex << std::showbase << digest << " cache_key="
               << phaseCacheKeyBase(
                      digest, sim::CycleEngine::kDefaultPrefetchWindow,
                      0)
               << std::dec << std::noshowbase << "\n";
        }
    }

    size_t ev = 0;
    const auto &events = program.phaseEvents;
    int depth = 0;
    const auto emitEvents = [&](size_t upTo) {
        while (ev < events.size() && events[ev].inst == upTo) {
            if (events[ev].name == PhaseEvent::kEnd) {
                depth = std::max(0, depth - 1);
                os << std::string(2 + 2 * static_cast<size_t>(depth), ' ')
                   << "}\n";
            } else {
                os << std::string(2 + 2 * static_cast<size_t>(depth), ' ')
                   << "phase "
                   << program
                          .phaseNames[static_cast<size_t>(events[ev].name)]
                   << " {\n";
                ++depth;
            }
            ++ev;
        }
    };

    size_t li = 0;
    bool inLoop = false;
    const auto loopEdges = [&](size_t i) {
        if (inLoop && i == program.loops[li].end) {
            depth = std::max(0, depth - 1);
            os << std::string(2 + 2 * static_cast<size_t>(depth), ' ')
               << "}\n";
            ++li;
            inLoop = false;
        }
        emitEvents(i); // markers at a loop edge sit outside the body
        if (!inLoop && li < program.loops.size() &&
            i == program.loops[li].end - program.loops[li].bodyLen) {
            os << std::string(2 + 2 * static_cast<size_t>(depth), ' ')
               << "repeat " << program.loops[li].trips << "x {\n";
            ++depth;
            inLoop = true;
        }
    };

    for (size_t i = 0; i < program.code.size(); ++i) {
        loopEdges(i);
        const BcInst &b = program.code[i];
        const BcDebug &dbg = program.debug[i];
        os << std::string(2 + 2 * static_cast<size_t>(depth), ' ')
           << std::setw(5) << i << " "
           << isa::opName(static_cast<isa::HwOp>(b.op)) << " res="
           << isa::resourceName(static_cast<isa::Resource>(b.resource))
           << " logN=" << dbg.logDegree << " batch=" << dbg.batch
           << " words=" << dbg.words << " work=" << dbg.work << " c="
           << b.computeCycles << " lane_c=" << b.busyLaneCycles
           << " noc=" << b.nocCycles << " fill=" << b.fillCycles;
        if (b.kind == BcKind::Stream) {
            os << " stream_bytes=" << b.staticFetchBytes
               << " stream_cycles=" << b.staticMemCycles;
        } else {
            os << " bufs=[";
            for (u16 k = 0; k < b.bufCount; ++k) {
                const BcBuf &buf =
                    program.bufs[b.bufBegin + static_cast<u32>(k)];
                if (k)
                    os << " ";
                if (buf.streamed)
                    os << "~";
                else
                    os << "s" << buf.slot << ":";
                os << std::hex << std::showbase << buf.id << std::dec
                   << std::noshowbase << "/" << buf.bytes;
                if (buf.write)
                    os << "w";
            }
            os << "]";
        }
        if (b.runLen > 1)
            os << " ; fused run len=" << b.runLen << " kind="
               << fuseKindName(b.fuse);
        os << "\n";
    }
    loopEdges(program.code.size());
}

} // namespace compiler
} // namespace ufc
