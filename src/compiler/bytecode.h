/**
 * @file
 * Trace-to-bytecode JIT: the compiled Program format and its builder.
 *
 * The cycle engine used to re-interpret the heavyweight trace IR on every
 * run: each issue() paid four virtual cost-model calls, an operand-vector
 * walk through an unordered_map-backed scratchpad, and a deque-based
 * prefetch window.  A Program lowers a trace *once* into a dense array of
 * fixed-size BcInst records with every cost-model term pre-computed and
 * every operand buffer pre-resolved to a dense scratchpad slot, so
 * execution (sim/bc_engine.h) is a tight dispatch loop over plain arrays
 * — the shape riposte's TraceInst bytecode and nullc's lowering context
 * use for the same reason.
 *
 * Bit-exactness contract (enforced by tests/test_bytecode.cpp): executing
 * a Program yields a RunStats bit-identical to feeding the same lowering
 * through the IR CycleEngine — cycles, energy inputs, per-op attribution,
 * stall causes and timeline slices.  Everything pre-computed here is a
 * pure function of (instruction, const machine config), evaluated with
 * the exact expressions the IR engine would use:
 *   - busyLaneCycles  = computeCycles * laneFraction   (same product)
 *   - staticFetchBytes sums streamed operand bytes in operand order
 *     (floating-point accumulation order is observable)
 *   - staticMemCycles = staticFetchBytes / hbmBytesPerCycle
 *     (kept as a division; multiplying by a precomputed inverse is NOT
 *     bit-identical)
 *   - transient refs and zero-byte streamed refs are dropped at compile
 *     time only because they provably contribute nothing to engine state
 *     or statistics.
 *
 * Fusion: maximal runs of consecutive instructions that touch no cached
 * (scratchpad-resident) operand and do not cross a phase boundary are
 * tagged as one macro-op at the run head (runLen > 1).  On UFC this makes
 * each hybrid key switch (ModUp -> inner product -> ModDown: the operands
 * stream or live on chip) and each TFHE blind-rotate body between
 * bootstrap-key fetches a single fused unit the executor iterates without
 * re-dispatching.  Legality is lintable: analysis rules
 * `bc-fuse-cached-operand` and `bc-fuse-phase-span` (verifyProgram).
 */

#ifndef UFC_COMPILER_BYTECODE_H
#define UFC_COMPILER_BYTECODE_H

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/lowering.h"
#include "isa/inst.h"
#include "trace/trace.h"

namespace ufc {
namespace sim {
class MachinePerf; // sim/engine.h
} // namespace sim

namespace compiler {

/** Execution class of one BcInst. */
enum class BcKind : u8
{
    /// No cached operands: the memory phase is fully pre-computed
    /// (staticFetchBytes / staticMemCycles), eligible for fusion.
    Stream,
    /// At least one operand goes through the scratchpad model; the
    /// executor walks the BcBuf records in operand order.
    Mem,
};

/** Why a fused run was formed (disassembly / lint context). */
enum class FuseKind : u8
{
    None,        ///< not a run head
    KeySwitch,   ///< inside a "key_switch" phase (ModUp/IP/ModDown)
    BlindRotate, ///< inside a "blind_rotate" phase (PBS inner loop)
    Generic,     ///< any other streaming run (bootstrap linear algebra...)
};

const char *fuseKindName(FuseKind kind);

/** One pre-resolved operand reference (transients are compiled away). */
struct BcBuf
{
    u64 id = 0;          ///< original buffer id (diagnostics only)
    double bytes = 0.0;  ///< region size, pre-converted to double
    u32 slot = kNoSlot;  ///< dense scratchpad slot; kNoSlot when streamed
    bool write = false;
    bool streamed = false;

    static constexpr u32 kNoSlot = 0xffffffffu;
};

/**
 * One bytecode instruction: every term the cycle model needs, resolved at
 * compile time.  64 bytes, so one record per cache line.
 */
struct BcInst
{
    double computeCycles = 0.0;    ///< MachinePerf::computeCycles
    double busyLaneCycles = 0.0;   ///< computeCycles * laneFraction
    double nocCycles = 0.0;        ///< MachinePerf::nocCycles
    double fillCycles = 0.0;       ///< MachinePerf::pipelineFillCycles
    /// Stream kind: streamed operand bytes, summed in operand order.
    double staticFetchBytes = 0.0;
    /// Stream kind: staticFetchBytes / hbmBytesPerCycle.
    double staticMemCycles = 0.0;
    u32 bufBegin = 0;  ///< first BcBuf (Mem kind)
    u16 bufCount = 0;  ///< BcBuf count (Mem kind)
    /// Fused-run head: number of consecutive Stream instructions
    /// (including this one) the executor may iterate without
    /// re-dispatching; 1 everywhere else.
    u16 runLen = 1;
    u8 op = 0;         ///< isa::HwOp
    u8 resource = 0;   ///< isa::Resource
    BcKind kind = BcKind::Stream;
    FuseKind fuse = FuseKind::None;
};

static_assert(sizeof(BcInst) == 64, "BcInst must stay one cache line");

/** Side-table row for disassembly (parallel to Program::code). */
struct BcDebug
{
    u32 logDegree = 0;
    u32 batch = 1;
    u64 words = 0;
    u64 work = 0;
};

/**
 * A phase marker between instructions: fires before instruction `inst`
 * (== code.size() for end-of-stream markers).  `name` indexes
 * Program::phaseNames; kEnd closes the innermost open phase.
 */
struct PhaseEvent
{
    u64 inst = 0;
    i32 name = kEnd;

    static constexpr i32 kEnd = -1;
};

/**
 * A folded structural repeat: the `bodyLen` instructions ending at index
 * `end` (exclusive — the body is code[end - bodyLen, end)) execute
 * `trips` times back to back.  Loops come from InstSink::beginRepeat
 * offers the builder accepted; they never nest, never overlap, and their
 * bodies are all-Stream (no scratchpad state), so re-executing the body
 * is observable-identical to the unrolled stream.  Sorted by `end`.
 */
struct BcLoop
{
    u64 end = 0;      ///< one past the last body instruction
    u32 bodyLen = 0;  ///< body instruction count (>= 1)
    u64 trips = 0;    ///< total executions of the body (>= 2)
};

/**
 * A memoizable phase region: instructions [begin, end) of Program::code
 * form one top-level phase whose boundaries never sit inside a fused run
 * or a folded loop (fusion and folding both break at phase markers).
 * Only regions of at least kMinSegmentInsts instructions are recorded,
 * bounding the per-segment snapshot overhead to a small fraction of the
 * execution they can save.  Sorted by begin; disjoint.
 *
 * Segments carry no content digest: hashing every recorded region on
 * every compile taxed runs that never arm a phase cache.  The engine
 * (and the disassembler) compute segmentContentHash() on demand instead,
 * so uncached runs pay nothing for the segment table.
 */
struct PhaseSegment
{
    u64 begin = 0; ///< first instruction of the region
    u64 end = 0;   ///< one past the last instruction
    i32 name = -1; ///< Program::phaseNames index of the region
};

/** Smallest phase region worth memoizing (see PhaseSegment). */
inline constexpr u64 kMinSegmentInsts = 512;

struct Program;

/**
 * FNV-1a digest of everything that determines how code[begin, end)
 * executes on this Program's machine — the per-instruction cost terms,
 * operand records (slot/bytes/flags; buffer ids are diagnostics and
 * excluded), loop rows relative to the segment, and the machine
 * constants — so equal hashes mean replaying one region's exit state for
 * the other is exact *provided the engine entry states also match*; the
 * phase cache (sim/phase_cache.h) keys on both.  Computed lazily: the
 * engine hashes a Program's segments once per run, and only when a cache
 * is armed.
 */
u64 segmentContentHash(const Program &p, u64 begin, u64 end);

/**
 * First component of a phase-cache key: the segment content digest
 * combined with the run parameters that change execution (prefetch
 * window, maxCycles watchdog).  The engine folds its entry state on top
 * of this; the disassembler prints it so cache behaviour is debuggable.
 */
u64 phaseCacheKeyBase(u64 segContentHash, int prefetchWindow,
                      u64 maxCycles);

namespace detail {

/**
 * Empty tag member counting live Program instances (process-wide).
 * Tests assert the runner's single-use eviction actually releases
 * compiled programs instead of retaining them for the whole batch.
 */
struct LiveCounter
{
    LiveCounter() noexcept { bump(); }
    LiveCounter(const LiveCounter &) noexcept { bump(); }
    LiveCounter(LiveCounter &&) noexcept { bump(); }
    LiveCounter &operator=(const LiveCounter &) noexcept = default;
    LiveCounter &operator=(LiveCounter &&) noexcept = default;
    ~LiveCounter();

  private:
    static void bump() noexcept;
};

} // namespace detail

/** Live Program instances right now (parts count individually). */
u64 livePrograms();
/** High-water mark of livePrograms() since the last reset. */
u64 peakLivePrograms();
/** Reset the peak to the current live count. */
void resetPeakLivePrograms();

/**
 * A compiled trace: everything AcceleratorModel::execute() needs, with no
 * references back to the Trace or the MachinePerf it came from.  Programs
 * are immutable after compileTrace() and safe to share across threads —
 * the runner's ProgramCache hands one instance to every job with the same
 * (model, trace-content) key.
 *
 * A composed machine compiles to a Program with empty `code` and one
 * sub-Program per chip in `parts` (plus the PCIe link traffic the
 * partition computed); single-chip Programs have empty `parts`.
 */
struct Program
{
    std::string workload;      ///< Trace::name (stamped into RunResult)
    std::string machine;       ///< model name the cost terms were baked for
    u64 traceHash = 0;         ///< trace::contentHash of the source trace

    // Machine constants captured from the MachinePerf.
    double hbmBytesPerCycle = 1.0;
    double scratchpadBytes = 0.0;
    u32 spadSlots = 0;         ///< dense scratchpad slot count

    std::vector<BcInst> code;
    std::vector<BcBuf> bufs;
    std::vector<BcLoop> loops;   ///< folded repeats, sorted by end
    std::vector<PhaseEvent> phaseEvents;
    std::vector<std::string> phaseNames; ///< owned; outlives the trace
    std::vector<BcDebug> debug;          ///< parallel to code
    std::vector<PhaseSegment> segments;  ///< memoizable phase regions

    // Composed-machine decomposition (see struct docs).
    std::vector<Program> parts;
    double pcieBytes = 0.0;
    u64 pcieTransfers = 0;

    // Fusion statistics (disassembly / bench reporting).
    u64 fusedRuns = 0;
    u64 fusedInsts = 0;

    bool composed() const { return !parts.empty(); }

    /// Instance accounting (see livePrograms()); stateless otherwise.
    detail::LiveCounter liveCounter;

    /** Instructions the executor steps, with loop bodies multiplied out
     *  — equals the IR interpreter's instruction count. */
    u64
    totalInsts() const
    {
        u64 n = code.size();
        for (const BcLoop &lp : loops)
            n += static_cast<u64>(lp.bodyLen) * (lp.trips - 1);
        return n;
    }
};

/**
 * One scratchpad-slot touch in a Program's def-use stream (see
 * slotAccesses()).  `inst` indexes Program::code; `write` mirrors the
 * BcBuf flag (a write access *defines* the slot's contents, a read
 * access *uses* them).  `id` is the lowering's buffer id — value-flow
 * analyses must check compiler::syntheticCiphertextId(id) before
 * treating the slot as a value (ciphertext-pool ids model locality
 * only); traffic analyses may use every access.
 */
struct SlotAccess
{
    u64 inst = 0;
    u32 slot = 0;
    u64 id = 0;
    double bytes = 0.0;
    bool write = false;
};

/**
 * Def-use export for the dataflow layer: every cached (scratchpad)
 * operand reference of a single-chip Program, in execution order —
 * program order over instructions, operand order within one — which is
 * exactly the order the engine's LRU walks them.  Streamed operands
 * never touch a slot and are omitted.  Composed Programs are rejected
 * with ConfigError; export each part instead.
 */
std::vector<SlotAccess> slotAccesses(const Program &p);

/**
 * InstSink that builds a Program: the bytecode emitter plugs into the
 * same Lowering pipeline as the analysis::VerifyingSink, so `--lint`
 * verification and JIT lowering compose in one pass over the instruction
 * stream (LoweringOptions::lint interposes the verifier in front of this
 * sink).  Single-use, like Lowering itself: issue everything, then call
 * finish() exactly once to run the fusion pass.
 */
class ProgramBuilder : public isa::InstSink
{
  public:
    /** Cost terms are baked from `perf`; both pointers must outlive the
     *  builder.  The builder appends into `out` (normally fresh). */
    ProgramBuilder(const sim::MachinePerf *perf, Program *out);

    void issue(const isa::HwInst &inst) override;
    void beginPhase(const char *name) override;
    void endPhase() override;

    /** Accept repeat folds: the body is compiled once and recorded as a
     *  Program loop (all-Stream bodies only; a body that touches the
     *  scratchpad is unrolled by re-issuing it trips-1 times, since its
     *  memory behaviour depends on LRU state). */
    bool beginRepeat(u64 trips) override;
    void endRepeat() override;

    /** Seal the Program: assign fused runs and the slot count. */
    void finish();

  private:
    u32 slotFor(u64 id);
    void fuse();

    const sim::MachinePerf *perf_;
    Program *out_;
    // Machine constants hoisted out of issue() (see ctor).
    double fillCycles_ = 0.0;
    double hbmBpc_ = 1.0;
    std::unordered_map<u64, u32> slots_;
    std::unordered_map<std::string, u32> phaseNameIdx_;
    // Open repeat offer (beginRepeat..endRepeat window).
    u64 repeatTrips_ = 0;
    u64 repeatStart_ = 0;      ///< code.size() at beginRepeat
    u64 repeatEvents_ = 0;     ///< phaseEvents.size() at beginRepeat
    bool repeatOpen_ = false;
    bool finished_ = false;
};

/**
 * Compile a trace for one machine: lower it with `opts` straight into a
 * ProgramBuilder (verifier interposed when `lint` is non-null, exactly as
 * in a simulation run) and return the sealed Program.  Throws the same
 * typed errors a lowering inside run() would.
 */
Program compileTrace(const trace::Trace &tr, const LoweringOptions &opts,
                     const sim::MachinePerf &perf,
                     const std::string &machineName,
                     analysis::DiagnosticReport *lint = nullptr);

/** Per-op admission hook for compileTraceStream (models that support a
 *  single scheme reject foreign ops here, with the same typed errors
 *  their whole-trace path throws).  Called before the op is lowered;
 *  `header` carries the trace parameters and name for diagnostics. */
using StreamOpCheck = std::function<void(const trace::Trace &header,
                                         const trace::TraceOp &op)>;

/**
 * Compile a trace straight from its text stream in bounded memory: a
 * trace::TraceReader feeds each validated op/mark into the Lowering as
 * it parses, so the full op vector is never materialized — traces larger
 * than memory flow through.  The resulting Program is identical to
 * compileTrace(readTrace(is), ...) for any stream writeTrace() produces.
 *
 * Chunk-protocol restrictions beyond the whole-file format (both throw
 * TraceError; writeTrace's canonical layout — header, then all phase
 * lines, then ops — never trips them):
 *   - header lines must precede the first op/phase line, since lowering
 *     geometry is derived from the header before the first op;
 *   - a phase marker for op i must arrive before op i's line (the
 *     lowering cannot retroactively open a region).
 *
 * `peakBufferedBytes`, when non-null, receives the reader's buffer
 * high-water mark (one partial line) so callers can assert boundedness.
 */
Program compileTraceStream(std::istream &is, const LoweringOptions &opts,
                           const sim::MachinePerf &perf,
                           const std::string &machineName,
                           analysis::DiagnosticReport *lint = nullptr,
                           const StreamOpCheck &opCheck = {},
                           std::size_t chunkBytes = std::size_t(64) << 10,
                           std::size_t *peakBufferedBytes = nullptr);

/**
 * Check the fused-op legality invariants of a compiled Program and append
 * violations to `out`:
 *   bc-fuse-cached-operand  a fused run contains an instruction with a
 *                           cached (scratchpad) operand — its memory
 *                           behaviour depends on LRU state, so it must
 *                           not be iterated as a streaming macro-op
 *   bc-fuse-phase-span      a fused run crosses a phase marker or a
 *                           loop boundary, which would mis-place
 *                           timeline slices / repeat executions
 *   bc-loop-invariant       a folded loop is malformed: out of bounds,
 *                           overlapping or unsorted, trivial (trips < 2
 *                           or empty body), containing a cached-operand
 *                           instruction, or spanning a phase marker
 * Programs produced by ProgramBuilder::finish() always pass; the rules
 * guard hand-built or mutated Programs (and regressions in the fusion
 * pass itself).
 */
void verifyProgram(const Program &program,
                   analysis::DiagnosticReport &out);

/** Human-readable disassembly (inspect_trace --bytecode). */
void disassemble(const Program &program, std::ostream &os);

} // namespace compiler
} // namespace ufc

#endif // UFC_COMPILER_BYTECODE_H
