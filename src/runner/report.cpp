/**
 * @file
 * Report emission implementation.
 */

#include "runner/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/json.h"
#include "common/prof.h"
#include "metrics/metrics.h"

namespace ufc {
namespace runner {

namespace {

/** Shared JSON string escaping (common/json.h) — error messages can
 *  carry quotes, backslashes and file paths. */
std::string
jsonStr(const std::string &s)
{
    return json::quote(s);
}

/** CSV field quoting for free-form text (RFC 4180 style). */
std::string
csvStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += "\"\"";
        else if (c == '\n')
            out += ' ';
        else
            out += c;
    }
    out += "\"";
    return out;
}

void
writeEnvelopeHead(std::ostream &os, const char *schema,
                  const ReportMeta &meta)
{
    char wall[40];
    std::snprintf(wall, sizeof(wall), "%.6f", meta.wallSeconds);
    os << "{\"schema\":\"" << schema << "\""
       << ",\"generator\":\"" << meta.generator << "\""
       << ",\"threads\":" << meta.threads
       << ",\"wall_seconds\":" << wall;
    // Only written when set, so pre-existing reports stay byte-stable.
    if (meta.interrupted)
        os << ",\"interrupted\":true";
}

} // namespace

void
writeJsonReport(const std::vector<sim::RunResult> &results,
                std::ostream &os, const ReportMeta &meta)
{
    writeEnvelopeHead(os, kReportSchema, meta);
    os << ",\"run_count\":" << results.size() << ",\"runs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            os << ",";
        os << "\n" << results[i].toJson();
    }
    os << "\n]}\n";
}

void
writeCsvReport(const std::vector<sim::RunResult> &results, std::ostream &os)
{
    os << sim::RunResult::csvHeader() << "\n";
    for (const auto &r : results)
        os << r.toCsvRow() << "\n";
}

void
writeJsonReport(const BatchResult &batch, std::ostream &os,
                const ReportMeta &meta)
{
    writeEnvelopeHead(os, kBatchReportSchema, meta);
    const auto ok = batch.okResults();
    os << ",\"job_count\":" << batch.results.size()
       << ",\"run_count\":" << ok.size()
       << ",\"failure_count\":" << batch.failureCount()
       << ",\"failures\":[";
    bool first = true;
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const auto &oc = batch.outcomes[i];
        if (oc.ok())
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"label\":" << jsonStr(batch.results[i].label)
           << ",\"status\":\"" << jobStatusName(oc.status) << "\""
           << ",\"error_kind\":" << jsonStr(oc.errorKind)
           << ",\"message\":" << jsonStr(oc.message)
           << ",\"attempts\":" << oc.attempts;
        if (!oc.recentEvents.empty()) {
            // Flight-recorder post-mortem captured when the job settled
            // (only present when metrics were on).
            os << ",\"recent_events\":[";
            for (std::size_t e = 0; e < oc.recentEvents.size(); ++e) {
                if (e)
                    os << ",";
                os << jsonStr(oc.recentEvents[e]);
            }
            os << "]";
        }
        os << "}";
    }
    os << (first ? "]" : "\n]") << ",\"runs\":[";
    for (std::size_t i = 0; i < ok.size(); ++i) {
        if (i)
            os << ",";
        os << "\n" << ok[i].toJson();
    }
    // Host-side observability blocks, appended only when the respective
    // layer is on so metrics-off reports stay byte-stable.
    if (metrics::enabled()) {
        os << "\n],\"metrics\":";
        metrics::writeJson(os);
        if (prof::enabled() && prof::hasSamples()) {
            os << ",\"host_profile\":";
            prof::writeJson(os);
        }
        os << "}\n";
    } else {
        os << "\n]}\n";
    }
}

void
writeCsvReport(const BatchResult &batch, std::ostream &os)
{
    os << sim::RunResult::csvHeader()
       << ",status,attempts,error_kind,error\n";
    for (std::size_t i = 0; i < batch.results.size(); ++i) {
        const auto &oc = batch.outcomes[i];
        os << batch.results[i].toCsvRow() << ","
           << jobStatusName(oc.status) << "," << oc.attempts << ","
           << oc.errorKind << "," << csvStr(oc.message) << "\n";
    }
}

namespace {

template <typename Payload, typename Writer>
void
saveReport(const Payload &payload, const std::string &path,
           const Writer &writer)
{
    std::ofstream os(path);
    UFC_EXPECT(os.good(), ConfigError,
               "cannot open " << path << " for writing");
    writer(payload, os);
}

} // namespace

void
saveJsonReport(const std::vector<sim::RunResult> &results,
               const std::string &path, const ReportMeta &meta)
{
    saveReport(results, path,
               [&](const std::vector<sim::RunResult> &r,
                   std::ostream &os) { writeJsonReport(r, os, meta); });
}

void
saveCsvReport(const std::vector<sim::RunResult> &results,
              const std::string &path)
{
    saveReport(results, path,
               [](const std::vector<sim::RunResult> &r,
                  std::ostream &os) { writeCsvReport(r, os); });
}

void
saveJsonReport(const BatchResult &batch, const std::string &path,
               const ReportMeta &meta)
{
    saveReport(batch, path,
               [&](const BatchResult &b, std::ostream &os) {
                   writeJsonReport(b, os, meta);
               });
}

void
saveCsvReport(const BatchResult &batch, const std::string &path)
{
    saveReport(batch, path, [](const BatchResult &b, std::ostream &os) {
        writeCsvReport(b, os);
    });
}

} // namespace runner
} // namespace ufc
