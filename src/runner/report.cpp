/**
 * @file
 * Report emission implementation.
 */

#include "runner/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/check.h"

namespace ufc {
namespace runner {

void
writeJsonReport(const std::vector<sim::RunResult> &results,
                std::ostream &os, const ReportMeta &meta)
{
    char wall[40];
    std::snprintf(wall, sizeof(wall), "%.6f", meta.wallSeconds);
    os << "{\"schema\":\"" << kReportSchema << "\""
       << ",\"generator\":\"" << meta.generator << "\""
       << ",\"threads\":" << meta.threads
       << ",\"wall_seconds\":" << wall
       << ",\"run_count\":" << results.size() << ",\"runs\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            os << ",";
        os << "\n" << results[i].toJson();
    }
    os << "\n]}\n";
}

void
writeCsvReport(const std::vector<sim::RunResult> &results, std::ostream &os)
{
    os << sim::RunResult::csvHeader() << "\n";
    for (const auto &r : results)
        os << r.toCsvRow() << "\n";
}

void
saveJsonReport(const std::vector<sim::RunResult> &results,
               const std::string &path, const ReportMeta &meta)
{
    std::ofstream os(path);
    UFC_REQUIRE(os.good(), "cannot open " << path << " for writing");
    writeJsonReport(results, os, meta);
}

void
saveCsvReport(const std::vector<sim::RunResult> &results,
              const std::string &path)
{
    std::ofstream os(path);
    UFC_REQUIRE(os.good(), "cannot open " << path << " for writing");
    writeCsvReport(results, os);
}

} // namespace runner
} // namespace ufc
