/**
 * @file
 * Experiment runner implementation, built on the shared fork-join pool
 * in common/parallel.h.  Each worker claims the next unstarted job and
 * writes its result into the job's slot, so completion order never
 * affects output order.  A fresh pool is built per batch with the
 * configured thread count; kernel-level parallelFor calls issued from
 * inside a job run inline on the job's worker (see parallel.h), so the
 * runner's thread budget is the true process concurrency.
 *
 * Fault isolation: runOne() wraps one job attempt in a catch-all, maps
 * the error to a JobOutcome (typed kind + message), and applies the
 * bounded retry policy.  Exceptions never cross the pool boundary
 * (parallelFor would terminate), and a failed job's slot holds a
 * labelled placeholder so reports stay aligned with the job list.
 */

#include "runner/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

#include "analysis/analyzer.h"
#include "analysis/cost_bounds.h"
#include "analysis/domains.h"
#include "common/error.h"
#include "compiler/bytecode.h"
#include "common/parallel.h"
#include "common/prof.h"
#include "metrics/flight_recorder.h"
#include "metrics/metrics.h"
#include "trace/serialize.h"

namespace ufc {
namespace runner {

namespace {

/// Serializes --progress stderr lines: stdio does not guarantee that
/// concurrent fprintf calls cannot interleave characters, so completion
/// lines from different workers go through one lock.
std::mutex gProgressMutex;

/// How many flight-recorder events a failed job attaches to its outcome.
constexpr std::size_t kFailureEventTail = 16;

/// Registry instruments for the batch job lifecycle, resolved once.
struct RunnerMetrics
{
    metrics::Counter &jobs = metrics::counter(
        "ufc_runner_jobs_total", "Jobs executed by the experiment runner");
    metrics::Counter &jobsOk = metrics::counter(
        "ufc_runner_jobs_ok_total", "Jobs that succeeded first try");
    metrics::Counter &jobsRetried = metrics::counter(
        "ufc_runner_jobs_retried_total",
        "Jobs that succeeded after at least one retry");
    metrics::Counter &jobsFailed = metrics::counter(
        "ufc_runner_jobs_failed_total", "Jobs whose every attempt failed");
    metrics::Counter &jobsTimeout = metrics::counter(
        "ufc_runner_jobs_timeout_total",
        "Jobs cancelled by the deadline/watchdog");
    metrics::Counter &retries = metrics::counter(
        "ufc_runner_retries_total", "Extra attempts after a failed one");
    metrics::Histogram &jobUs = metrics::histogram(
        "ufc_runner_job_duration_us",
        "Per-job wall clock in microseconds, retries included");
};

RunnerMetrics &
runnerMetrics()
{
    static RunnerMetrics *m = new RunnerMetrics(); // never freed
    return *m;
}

/// Registry instruments for the batch-scoped ProgramCache.
struct ProgramCacheMetrics
{
    metrics::Counter &hits = metrics::counter(
        "ufc_program_cache_hits_total",
        "Program-cache requests served from an installed entry");
    metrics::Counter &misses = metrics::counter(
        "ufc_program_cache_misses_total",
        "Program-cache requests that triggered a compile");
    metrics::Counter &evictions = metrics::counter(
        "ufc_program_cache_evictions_total",
        "Program-cache entries dropped by the maxEntries bound");
    metrics::Gauge &entries = metrics::gauge(
        "ufc_program_cache_entries",
        "Entries in the most recently touched program cache");
};

ProgramCacheMetrics &
programCacheMetrics()
{
    static ProgramCacheMetrics *m = new ProgramCacheMetrics();
    return *m;
}

/// Console flag for the --progress line: what the batch phase cache did
/// for this job.
const char *
cacheFlag(const RunnerConfig &cfg, const sim::RunResult &r)
{
    if (!cfg.phaseCache)
        return "off";
    if (r.phaseCacheHits > 0 && r.phaseCacheMisses > 0)
        return "mixed";
    if (r.phaseCacheHits > 0)
        return "hit";
    if (r.phaseCacheMisses > 0)
        return "miss";
    return "none"; // cache armed but no segment boundary crossed
}

} // namespace

std::shared_ptr<const compiler::Program>
ProgramCache::get(const sim::AcceleratorModel &model,
                  const trace::Trace &tr)
{
    const Key key{&model, trace::contentHash(tr)};

    std::promise<std::shared_ptr<const compiler::Program>> promise;
    Entry entry;
    bool owner = false;
    u64 evicted = 0;
    std::size_t entryCount = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            entry = it->second;
        } else {
            entry = promise.get_future().share();
            entries_.emplace(key, entry);
            order_.push_back(key);
            owner = true;
            // FIFO eviction: drop the oldest entry while over the bound.
            // Evicting an in-flight compile is safe — waiters hold their
            // own shared_future copies — and the key can be re-inserted
            // (and re-compiled) later; compilation is deterministic, so
            // only host time changes.
            while (maxEntries_ > 0 && entries_.size() > maxEntries_) {
                entries_.erase(order_.front());
                order_.pop_front();
                evictions_.fetch_add(1, std::memory_order_relaxed);
                ++evicted;
            }
        }
        entryCount = entries_.size();
    }

    if (metrics::enabled()) {
        ProgramCacheMetrics &m = programCacheMetrics();
        (owner ? m.misses : m.hits).inc();
        if (evicted > 0)
            m.evictions.inc(evicted);
        m.entries.set(static_cast<i64>(entryCount));
        metrics::flightRecorder().record(
            owner ? metrics::EventKind::CacheMiss
                  : metrics::EventKind::CacheHit,
            "program_cache", "workload=" + tr.name);
        if (evicted > 0)
            metrics::flightRecorder().record(
                metrics::EventKind::CacheEvict, "program_cache",
                "evicted=" + std::to_string(evicted));
    }

    // First requester compiles outside the lock (so unrelated keys are
    // not serialized behind a slow compile) and publishes the Program —
    // or the typed error — to everyone waiting on the shared future.
    if (owner) {
        compiles_.fetch_add(1, std::memory_order_relaxed);
        try {
            promise.set_value(std::make_shared<const compiler::Program>(
                model.compile(tr)));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::RetriedOk: return "retried_ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Skipped: return "skipped";
    }
    return "unknown";
}

std::size_t
BatchResult::failureCount() const
{
    std::size_t n = 0;
    for (const auto &oc : outcomes)
        if (!oc.ok())
            ++n;
    return n;
}

bool
BatchResult::interrupted() const
{
    for (const auto &oc : outcomes)
        if (oc.status == JobStatus::Skipped)
            return true;
    return false;
}

std::vector<sim::RunResult>
BatchResult::okResults() const
{
    std::vector<sim::RunResult> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        if (outcomes[i].ok())
            out.push_back(results[i]);
    return out;
}

void
BatchResult::throwFirstFailure() const
{
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto &oc = outcomes[i];
        if (oc.ok())
            continue;
        const std::string msg = "job '" + results[i].label +
                                "' " + jobStatusName(oc.status) +
                                " after " + std::to_string(oc.attempts) +
                                " attempt(s): " + oc.message;
        if (oc.status == JobStatus::TimedOut)
            throw TimeoutError(msg);
        if (oc.status == JobStatus::Skipped)
            throw SimError(msg);
        if (oc.errorKind == "TraceError")
            throw TraceError(msg);
        if (oc.errorKind == "ConfigError")
            throw ConfigError(msg);
        throw SimError(msg);
    }
}

ExperimentRunner::ExperimentRunner(const RunnerConfig &cfg) : cfg_(cfg) {}

int
ExperimentRunner::effectiveThreads(std::size_t jobs) const
{
    int t = cfg_.threads;
    if (t <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        t = hw > 0 ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(t) > jobs)
        t = static_cast<int>(jobs);
    return t < 1 ? 1 : t;
}

void
ExperimentRunner::runOne(const Job &job, std::size_t index,
                         sim::RunResult &result, JobOutcome &outcome,
                         ProgramCache *cache) const
{
    const int maxAttempts = 1 + (cfg_.maxRetries > 0 ? cfg_.maxRetries
                                                     : 0);
    const std::string label =
        !job.label.empty() ? job.label
                           : "job#" + std::to_string(index);

    if (metrics::enabled())
        metrics::flightRecorder().record(metrics::EventKind::JobStart,
                                         label);

    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        outcome.attempts = attempt;
        if (attempt > 1 && metrics::enabled()) {
            runnerMetrics().retries.inc();
            metrics::flightRecorder().record(metrics::EventKind::JobRetry,
                                             label,
                                             "attempt=" +
                                                 std::to_string(attempt));
        }
        try {
            UFC_EXPECT(job.model != nullptr, ConfigError,
                       "runner job '" << label << "' has no model");
            UFC_EXPECT((job.trace != nullptr) != !job.traceFile.empty(),
                       ConfigError,
                       "runner job '" << label
                           << "' must set exactly one of trace and "
                              "traceFile");
            if (cfg_.faults)
                cfg_.faults->maybeFailJob(label, attempt);

            // Deserialization happens inside the isolation boundary so
            // a corrupt file fails this job, not the batch.
            std::shared_ptr<const trace::Trace> tr = job.trace;
            if (!tr)
                tr = std::make_shared<const trace::Trace>(
                    trace::loadTrace(job.traceFile));

            // Opt-in static-analysis pre-flight: a semantically corrupt
            // trace fails fast as a typed TraceError (carrying the
            // first diagnostic) instead of mis-simulating.  Trace-level
            // passes only — instruction-level verification depends on
            // the model's lowering options, and ufc_lint covers it
            // offline.
            if (job.options.lintTraces || job.options.dataflowLint) {
                static const analysis::Analyzer linter;
                const analysis::DiagnosticReport rep =
                    job.options.dataflowLint ? linter.analyzeDataflow(*tr)
                                             : linter.analyze(*tr);
                if (const analysis::Diagnostic *first =
                        rep.firstError()) {
                    throw TraceError(
                        "lint failed for trace '" + tr->name + "' (" +
                        std::to_string(rep.errorCount()) +
                        " error(s)): " + first->format());
                }
            }

            sim::RunOptions opts = job.options;
            if (opts.label.empty())
                opts.label = label;
            // The batch-shared phase cache applies to bytecode execution
            // only; the IR interpreter has no segment table.  (A job
            // deadline still disables it inside the engine.)
            if (cfg_.phaseCache &&
                opts.execMode == sim::ExecMode::Bytecode)
                opts.phaseCache = cfg_.phaseCache;
            if (cfg_.jobTimeoutSeconds > 0.0)
                opts.hostDeadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            cfg_.jobTimeoutSeconds));

            const auto t0 = std::chrono::steady_clock::now();
            // Bytecode jobs that need the compiled Program in hand
            // (batch compile sharing, the program-level dataflow rules,
            // the static cost-bound gate) take the explicit
            // compile+execute path; for Bytecode mode run() IS
            // execute(compile()), so results are bit-identical.
            const bool wantProgram =
                opts.execMode == sim::ExecMode::Bytecode &&
                (cache != nullptr || job.options.dataflowLint ||
                 job.options.boundsCheck);
            if (wantProgram) {
                std::shared_ptr<const compiler::Program> program;
                if (cache) {
                    // Compile-once path: sibling jobs over the same
                    // (model, trace) pair share the compiled Program.
                    program = cache->get(*job.model, *tr);
                } else {
                    program = std::make_shared<const compiler::Program>(
                        job.model->compile(*tr));
                }
                if (job.options.dataflowLint) {
                    // Program-level rules on the cached bytecode (the
                    // trace-level dataflow passes already ran in the
                    // pre-flight above — no re-lowering).
                    analysis::DiagnosticReport rep;
                    compiler::verifyProgram(*program, rep);
                    analysis::runProgramDataflow(*program, rep);
                    if (const analysis::Diagnostic *first =
                            rep.firstError()) {
                        throw TraceError(
                            "dataflow lint failed for program '" +
                            program->workload + "' (" +
                            std::to_string(rep.errorCount()) +
                            " error(s)): " + first->format());
                    }
                }
                analysis::CostBounds bounds;
                if (job.options.boundsCheck)
                    bounds = analysis::analyzeCostBounds(*program);
                result = job.model->execute(*program, opts);
                if (job.options.boundsCheck) {
                    outcome.boundsChecked = true;
                    outcome.cyclesLower = bounds.cyclesLower;
                    outcome.cyclesUpper = bounds.cyclesUpper;
                    outcome.hbmLower = bounds.hbmLower;
                    outcome.hbmUpper = bounds.hbmUpper;
                    const double cycles = result.stats.totalCycles;
                    const double hbm = result.stats.hbmBytes;
                    UFC_EXPECT(cycles >= bounds.cyclesLower &&
                                   cycles <= bounds.cyclesUpper,
                               SimError,
                               "static cycle bound violated for '"
                                   << label << "': dynamic " << cycles
                                   << " outside [" << bounds.cyclesLower
                                   << ", " << bounds.cyclesUpper << "]");
                    UFC_EXPECT(hbm >= bounds.hbmLower &&
                                   hbm <= bounds.hbmUpper,
                               SimError,
                               "static HBM bound violated for '"
                                   << label << "': dynamic " << hbm
                                   << " outside [" << bounds.hbmLower
                                   << ", " << bounds.hbmUpper << "]");
                }
            } else {
                result = job.model->run(*tr, opts);
            }
            const auto t1 = std::chrono::steady_clock::now();
            if (cfg_.measureHostTime)
                result.hostSeconds =
                    std::chrono::duration<double>(t1 - t0).count();
            // On a retry success, keep the previous failure's
            // kind/message as the captured diagnostic.
            outcome.status = attempt == 1 ? JobStatus::Ok
                                          : JobStatus::RetriedOk;
            if (metrics::enabled()) {
                RunnerMetrics &m = runnerMetrics();
                (attempt == 1 ? m.jobsOk : m.jobsRetried).inc();
                metrics::flightRecorder().record(
                    metrics::EventKind::JobOk, label,
                    attempt == 1 ? std::string()
                                 : "attempt=" + std::to_string(attempt));
            }
            return;
        } catch (const TimeoutError &e) {
            // Deadline/watchdog trips are terminal: retrying a hung job
            // would hang again.
            outcome.status = JobStatus::TimedOut;
            outcome.errorKind = e.kind();
            outcome.message = e.what();
            break;
        } catch (const Error &e) {
            outcome.status = JobStatus::Failed;
            outcome.errorKind = e.kind();
            outcome.message = e.what();
        } catch (const std::exception &e) {
            outcome.status = JobStatus::Failed;
            outcome.errorKind = "std::exception";
            outcome.message = e.what();
        }
        // Capped exponential backoff with deterministic jitter before
        // the next attempt (common/backoff.h) — a correlated transient
        // fault gets time to clear.  Sleeping only affects host
        // wall-clock, never simulated results.
        if (attempt < maxAttempts)
            backoffSleep(cfg_.retryBackoff, label, attempt);
    }
    // All attempts failed (or timed out): leave a labelled placeholder
    // so result slots stay aligned with the job list.
    result = sim::RunResult{};
    result.label = label;
    if (job.model)
        result.machine = job.model->name();
    if (job.trace)
        result.workload = job.trace->name;
    if (metrics::enabled()) {
        RunnerMetrics &m = runnerMetrics();
        const bool timedOut = outcome.status == JobStatus::TimedOut;
        (timedOut ? m.jobsTimeout : m.jobsFailed).inc();
        metrics::flightRecorder().record(
            timedOut ? metrics::EventKind::JobTimeout
                     : metrics::EventKind::JobFailed,
            label, outcome.errorKind);
        // Attach the post-mortem: the recorder's recent tail, including
        // this job's own terminal event.
        outcome.recentEvents =
            metrics::flightRecorder().formatTail(kFailureEventTail);
    }
}

void
ExperimentRunner::runJob(const Job &job, std::size_t index,
                         sim::RunResult &result, JobOutcome &outcome,
                         ProgramCache *cache) const
{
    runOne(job, index, result, outcome, cache);
}

BatchResult
ExperimentRunner::runAll(const std::vector<Job> &jobs) const
{
    BatchResult batch;
    batch.results.resize(jobs.size());
    batch.outcomes.resize(jobs.size());

    std::atomic<std::size_t> jobsDone{0};
    // Batch-scoped: the jobs' shared_ptrs keep every model alive for at
    // least as long as the cache (see ProgramCache lifetime contract).
    ProgramCache cache(cfg_.programCacheMaxEntries);
    // Register the cache series even when no job ends up sharing a
    // program (a scrape should see the counters at zero, not miss the
    // series entirely).
    if (metrics::enabled())
        (void)programCacheMetrics();

    // A compiled Program is only worth retaining when a sibling job will
    // reuse it.  The job list is known up front, so count the distinct
    // (model, trace) pairs: singleton jobs take the run() shim instead,
    // which frees their Program at job end — the allocator then recycles
    // those already-faulted pages for the next job's compile instead of
    // every job paying first-touch cost on fresh ones (and the batch
    // peak RSS stays bounded by the genuinely shared programs).
    const auto pairKey = [](const Job &job) {
        u64 h = reinterpret_cast<std::uintptr_t>(job.model.get());
        h ^= reinterpret_cast<std::uintptr_t>(job.trace.get()) +
             0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return h;
    };
    std::unordered_map<u64, int> pairUses;
    for (const Job &job : jobs)
        if (job.model && job.trace)
            ++pairUses[pairKey(job)];
    std::vector<char> sharedProgram(jobs.size(), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        sharedProgram[i] = jobs[i].model && jobs[i].trace &&
                           pairUses[pairKey(jobs[i])] > 1;

    ThreadPool pool(effectiveThreads(jobs.size()));
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        UFC_PROF_SCOPE("runner.job");
        // Cooperative cancellation (SIGINT/SIGTERM in sweep_all): jobs
        // not yet started are marked Skipped so the partial report
        // still accounts for every job, and in-flight siblings finish
        // normally — their results stay bit-identical to an
        // uninterrupted run.
        if (cfg_.cancelFlag &&
            cfg_.cancelFlag->load(std::memory_order_relaxed)) {
            auto &oc = batch.outcomes[i];
            oc.status = JobStatus::Skipped;
            oc.attempts = 0;
            oc.errorKind = "Interrupted";
            oc.message = "batch cancelled before this job started";
            auto &r = batch.results[i];
            r = sim::RunResult{};
            r.label = !jobs[i].label.empty()
                          ? jobs[i].label
                          : "job#" + std::to_string(i);
            return;
        }
        // Per-job wall clock (retries included) for the latency
        // histogram and the --progress line; skipped entirely when
        // neither consumer is active.
        const bool timeJob = cfg_.progress || metrics::enabled();
        const auto t0 = timeJob ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
        runOne(jobs[i], i, batch.results[i], batch.outcomes[i],
               sharedProgram[i] ? &cache : nullptr);
        double wallMs = 0.0;
        if (timeJob) {
            wallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
            if (metrics::enabled()) {
                RunnerMetrics &m = runnerMetrics();
                m.jobs.inc();
                m.jobUs.record(static_cast<u64>(wallMs * 1000.0));
            }
        }
        if (cfg_.progress) {
            const std::size_t done =
                jobsDone.fetch_add(1, std::memory_order_relaxed) + 1;
            const auto &r = batch.results[i];
            const auto &oc = batch.outcomes[i];
            // One line per completed job, serialized so concurrent
            // completions cannot interleave characters.
            std::lock_guard<std::mutex> lock(gProgressMutex);
            if (oc.ok()) {
                std::fprintf(stderr,
                             "[%zu/%zu] %s status=%s machine=%s "
                             "workload=%s wall_ms=%.1f cache=%s\n",
                             done, jobs.size(), r.label.c_str(),
                             jobStatusName(oc.status),
                             r.machine.c_str(), r.workload.c_str(),
                             wallMs, cacheFlag(cfg_, r));
            } else {
                std::fprintf(stderr,
                             "[%zu/%zu] %s status=%s attempts=%d "
                             "wall_ms=%.1f error=%s: %s\n",
                             done, jobs.size(), r.label.c_str(),
                             jobStatusName(oc.status), oc.attempts,
                             wallMs, oc.errorKind.c_str(),
                             oc.message.c_str());
            }
        }
    });
    if (cfg_.progress && prof::enabled() && prof::hasSamples())
        prof::report(std::cerr);
    return batch;
}

std::vector<sim::RunResult>
ExperimentRunner::run(const std::vector<Job> &jobs) const
{
    BatchResult batch = runAll(jobs);
    batch.throwFirstFailure();
    return std::move(batch.results);
}

ResultSet::ResultSet(std::vector<sim::RunResult> results)
    : results_(std::move(results))
{
    for (std::size_t i = 0; i < results_.size(); ++i) {
        if (results_[i].label.empty())
            continue;
        const bool fresh =
            byLabel_.emplace(results_[i].label, i).second;
        UFC_EXPECT(fresh, ConfigError,
                   "duplicate run label: " << results_[i].label);
    }
}

const sim::RunResult &
ResultSet::at(const std::string &label) const
{
    const auto it = byLabel_.find(label);
    UFC_EXPECT(it != byLabel_.end(), ConfigError,
               "no run labelled: " << label);
    return results_[it->second];
}

bool
ResultSet::contains(const std::string &label) const
{
    return byLabel_.find(label) != byLabel_.end();
}

std::string
jobLabel(const std::string &sweep, const std::string &group,
         const std::string &workload, const std::string &machine)
{
    return sweep + "/" + group + "/" + workload + "/" + machine;
}

} // namespace runner
} // namespace ufc
