/**
 * @file
 * Experiment runner implementation, built on the shared fork-join pool
 * in common/parallel.h.  Each worker claims the next unstarted job and
 * writes its result into the job's slot, so completion order never
 * affects output order.  A fresh pool is built per batch with the
 * configured thread count; kernel-level parallelFor calls issued from
 * inside a job run inline on the job's worker (see parallel.h), so the
 * runner's thread budget is the true process concurrency.
 */

#include "runner/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "common/check.h"
#include "common/parallel.h"
#include "common/prof.h"

namespace ufc {
namespace runner {

ExperimentRunner::ExperimentRunner(const RunnerConfig &cfg) : cfg_(cfg) {}

int
ExperimentRunner::effectiveThreads(std::size_t jobs) const
{
    int t = cfg_.threads;
    if (t <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        t = hw > 0 ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(t) > jobs)
        t = static_cast<int>(jobs);
    return t < 1 ? 1 : t;
}

std::vector<sim::RunResult>
ExperimentRunner::run(const std::vector<Job> &jobs) const
{
    for (const auto &job : jobs) {
        UFC_REQUIRE(job.model != nullptr,
                    "runner job '" << job.label << "' has no model");
        UFC_REQUIRE(job.trace != nullptr,
                    "runner job '" << job.label << "' has no trace");
    }

    std::vector<sim::RunResult> results(jobs.size());

    std::atomic<std::size_t> jobsDone{0};
    ThreadPool pool(effectiveThreads(jobs.size()));
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        UFC_PROF_SCOPE("runner.job");
        const Job &job = jobs[i];
        sim::RunOptions opts = job.options;
        if (opts.label.empty())
            opts.label = job.label;
        const auto t0 = std::chrono::steady_clock::now();
        results[i] = job.model->run(*job.trace, opts);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        if (cfg_.measureHostTime)
            results[i].hostSeconds = secs;
        if (cfg_.progress) {
            // One line per completed job; fprintf keeps the line atomic
            // across workers (stderr is unbuffered per C).
            const std::size_t done =
                jobsDone.fetch_add(1, std::memory_order_relaxed) + 1;
            std::fprintf(stderr,
                         "[%zu/%zu] %s machine=%s workload=%s "
                         "host_seconds=%.3f\n",
                         done, jobs.size(), opts.label.c_str(),
                         results[i].machine.c_str(),
                         results[i].workload.c_str(), secs);
        }
    });
    if (cfg_.progress && prof::enabled() && prof::hasSamples())
        prof::report(std::cerr);
    return results;
}

ResultSet::ResultSet(std::vector<sim::RunResult> results)
    : results_(std::move(results))
{
    for (std::size_t i = 0; i < results_.size(); ++i) {
        if (results_[i].label.empty())
            continue;
        const bool fresh =
            byLabel_.emplace(results_[i].label, i).second;
        UFC_REQUIRE(fresh, "duplicate run label: " << results_[i].label);
    }
}

const sim::RunResult &
ResultSet::at(const std::string &label) const
{
    const auto it = byLabel_.find(label);
    UFC_REQUIRE(it != byLabel_.end(), "no run labelled: " << label);
    return results_[it->second];
}

bool
ResultSet::contains(const std::string &label) const
{
    return byLabel_.find(label) != byLabel_.end();
}

std::string
jobLabel(const std::string &sweep, const std::string &group,
         const std::string &workload, const std::string &machine)
{
    return sweep + "/" + group + "/" + workload + "/" + machine;
}

} // namespace runner
} // namespace ufc
