/**
 * @file
 * Thread-pool-backed batch experiment runner.
 *
 * The paper's evaluation is a sweep — every workload x accelerator x
 * configuration point of Figures 10-15 — and each figure binary used to
 * hand-roll its own serial loop over AcceleratorModel::run().  The runner
 * replaces those loops: callers declare a list of Jobs (model + trace +
 * RunOptions), the runner executes them across a pool of worker threads,
 * and the results come back in job order, bit-identical to a serial run
 * (AcceleratorModel::run is const and re-entrant; see accelerator.h).
 */

#ifndef UFC_RUNNER_RUNNER_H
#define UFC_RUNNER_RUNNER_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/accelerator.h"
#include "trace/trace.h"

namespace ufc {
namespace runner {

/**
 * One experiment: a trace simulated on a model under given options.
 * Model and trace are shared so a sweep can cross N models with M traces
 * without copying either.
 */
struct Job
{
    /// Unique key for result lookup; copied into RunOptions::label (and
    /// from there into RunResult::label) when options.label is empty.
    std::string label;
    std::shared_ptr<const sim::AcceleratorModel> model;
    std::shared_ptr<const trace::Trace> trace;
    sim::RunOptions options;
};

/** Runner knobs. */
struct RunnerConfig
{
    /// Worker threads; <= 0 means std::thread::hardware_concurrency().
    int threads = 0;
    /// Fill RunResult::hostSeconds with per-job wall-clock.
    bool measureHostTime = true;
    /// Emit one machine-readable status line to stderr as each job
    /// finishes ("[jobs_done/jobs_total] <label> ..."), plus a host
    /// profile report after the batch when UFC_PROFILE is on.  Progress
    /// output never affects results (stderr only, completion order).
    bool progress = false;
};

/**
 * Executes a batch of jobs concurrently.  Results are returned in job
 * order regardless of scheduling, so `run(jobs)` with any thread count
 * produces the same vector (only hostSeconds, a host-side measurement,
 * varies).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const RunnerConfig &cfg = RunnerConfig{});

    /** Run every job; blocks until all complete. */
    std::vector<sim::RunResult> run(const std::vector<Job> &jobs) const;

    /** Threads the pool would use for a batch of `jobs` jobs. */
    int effectiveThreads(std::size_t jobs) const;

    const RunnerConfig &config() const { return cfg_; }

  private:
    RunnerConfig cfg_;
};

/**
 * Label-indexed view over a batch's results.  Lookup keys are the Job
 * labels (== RunResult::label).
 */
class ResultSet
{
  public:
    ResultSet() = default;
    explicit ResultSet(std::vector<sim::RunResult> results);

    /** Result with the given label; ufcFatal if absent. */
    const sim::RunResult &at(const std::string &label) const;
    bool contains(const std::string &label) const;

    const std::vector<sim::RunResult> &all() const { return results_; }
    std::size_t size() const { return results_.size(); }

  private:
    std::vector<sim::RunResult> results_;
    std::unordered_map<std::string, std::size_t> byLabel_;
};

/** Canonical label format shared by the sweep builders and the benches:
 *  "<sweep>/<group>/<workload>/<machine>". */
std::string jobLabel(const std::string &sweep, const std::string &group,
                     const std::string &workload,
                     const std::string &machine);

} // namespace runner
} // namespace ufc

#endif // UFC_RUNNER_RUNNER_H
