/**
 * @file
 * Thread-pool-backed batch experiment runner with per-job fault
 * isolation.
 *
 * The paper's evaluation is a sweep — every workload x accelerator x
 * configuration point of Figures 10-15 — and each figure binary used to
 * hand-roll its own serial loop over AcceleratorModel::run().  The runner
 * replaces those loops: callers declare a list of Jobs (model + trace +
 * RunOptions), the runner executes them across a pool of worker threads,
 * and the results come back in job order, bit-identical to a serial run
 * (AcceleratorModel::run is const and re-entrant; see accelerator.h).
 *
 * Failure containment: a job that throws ufc::Error (malformed trace
 * file, invalid RunOptions, unexecutable workload, watchdog/deadline
 * trip, injected fault) is recorded in its JobOutcome slot — with a
 * bounded retry for transient faults — and the rest of the batch runs
 * to completion.  The successful jobs' results are bit-identical to
 * what a clean batch would have produced: jobs share nothing, so a
 * neighbour's failure cannot perturb them.
 */

#ifndef UFC_RUNNER_RUNNER_H
#define UFC_RUNNER_RUNNER_H

#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/fault.h"
#include "sim/accelerator.h"
#include "trace/trace.h"

namespace ufc {
namespace runner {

/**
 * Batch-scoped cache of compiled Programs keyed on (model instance,
 * trace content hash): a sweep that executes one trace under many
 * RunOptions pays the model's compile() exactly once per distinct
 * (model, trace) pair, even when the jobs land on different worker
 * threads concurrently.
 *
 * Concurrency: the first requester of a key installs a shared future
 * and compiles outside the map lock; later requesters block on that
 * future.  A compile error is cached too and rethrown to every
 * requester — compilation is deterministic, so retrying it cannot
 * succeed.
 *
 * Lifetime: keys hold raw model pointers, so a cache must not outlive
 * the models it has seen.  The runner builds one per batch (the jobs'
 * shared_ptrs keep the models alive); standalone users with longer-
 * lived models may keep one for as long as those models exist.
 */
class ProgramCache
{
  public:
    /** `maxEntries` bounds the cache (0 = unbounded, the default).
     *  When an insert exceeds the bound the oldest entry is evicted
     *  (FIFO by insertion) — safe even while the evicted compile is
     *  still in flight, since every waiter holds its own copy of the
     *  shared future and the Program is shared_ptr-owned. */
    explicit ProgramCache(std::size_t maxEntries = 0)
        : maxEntries_(maxEntries)
    {}

    /** The compiled Program for `tr` on `model`, compiling on first
     *  use.  Thread-safe; throws whatever compile() threw. */
    std::shared_ptr<const compiler::Program>
    get(const sim::AcceleratorModel &model, const trace::Trace &tr);

    /** Requests served from an already-installed entry. */
    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    /** compile() calls actually performed (== distinct keys seen,
     *  counting re-compiles of evicted keys). */
    u64
    compiles() const
    {
        return compiles_.load(std::memory_order_relaxed);
    }
    /** Entries dropped by the maxEntries bound. */
    u64
    evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

  private:
    struct Key
    {
        const sim::AcceleratorModel *model;
        u64 traceHash;

        bool
        operator==(const Key &o) const
        {
            return model == o.model && traceHash == o.traceHash;
        }
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            // Splitmix-style combine of the two 64-bit halves.
            u64 h = reinterpret_cast<std::uintptr_t>(k.model);
            h ^= k.traceHash + 0x9e3779b97f4a7c15ULL + (h << 6) +
                 (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    using Entry =
        std::shared_future<std::shared_ptr<const compiler::Program>>;

    const std::size_t maxEntries_;
    std::mutex mu_;
    std::unordered_map<Key, Entry, KeyHash> entries_;
    std::deque<Key> order_; ///< insertion order, for FIFO eviction
    std::atomic<u64> hits_{0};
    std::atomic<u64> compiles_{0};
    std::atomic<u64> evictions_{0};
};

/**
 * One experiment: a trace simulated on a model under given options.
 * Model and trace are shared so a sweep can cross N models with M traces
 * without copying either.
 *
 * The trace may be given eagerly (`trace`) or as a file path
 * (`traceFile`) that is loaded *inside* the job's fault isolation, so a
 * corrupt or truncated file fails only its own job instead of the batch
 * assembly.  Exactly one of the two must be set.
 */
struct Job
{
    /// Unique key for result lookup; copied into RunOptions::label (and
    /// from there into RunResult::label) when options.label is empty.
    std::string label;
    std::shared_ptr<const sim::AcceleratorModel> model;
    std::shared_ptr<const trace::Trace> trace;
    sim::RunOptions options;
    /// Lazy alternative to `trace`: path to a serialized ufctrace file,
    /// deserialized per attempt inside the job's isolation boundary.
    std::string traceFile;
};

/** Runner knobs. */
struct RunnerConfig
{
    /// Worker threads; <= 0 means std::thread::hardware_concurrency().
    int threads = 0;
    /// Fill RunResult::hostSeconds with per-job wall-clock.
    bool measureHostTime = true;
    /// Emit one machine-readable status line to stderr as each job
    /// finishes ("[jobs_done/jobs_total] <label> status=... ..."), plus
    /// a host profile report after the batch when UFC_PROFILE is on.
    /// Lines are serialized under a mutex so concurrent completions
    /// cannot interleave characters.  Progress output never affects
    /// results (stderr only, completion order).
    bool progress = false;
    /// Extra attempts after a failed one (not applied to timeouts — a
    /// hung job would hang again).  0 = fail on the first error.
    int maxRetries = 0;
    /// Delay schedule between retry attempts: capped exponential with
    /// deterministic seeded jitter keyed on the job label (see
    /// common/backoff.h).  Replaces the immediate re-run: a correlated
    /// transient fault gets time to clear instead of burning the retry
    /// budget instantly.  Set baseMs <= 0 to restore immediate retry.
    /// Sleeping never affects results — only host wall-clock.
    BackoffPolicy retryBackoff;
    /// Optional cooperative cancellation flag (not owned): once it reads
    /// true, jobs not yet started are marked JobStatus::Skipped instead
    /// of running, and runAll() returns as soon as in-flight jobs
    /// finish.  sweep_all points this at its SIGINT/SIGTERM flag so an
    /// interrupted sweep still flushes a partial report.
    const std::atomic<bool> *cancelFlag = nullptr;
    /// Per-attempt cooperative deadline in host seconds, enforced via
    /// the cycle engine's poll points; <= 0 disables.  A tripped
    /// deadline marks the job timed_out without disturbing the batch.
    double jobTimeoutSeconds = 0.0;
    /// Optional deterministic fault source (tests): consulted at the
    /// top of every job attempt; an injected fault follows the normal
    /// failure/retry path.  Not owned.
    const FaultInjector *faults = nullptr;
    /// Optional caller-owned phase-result cache (sim/phase_cache.h)
    /// shared by every bytecode job in the batch — content-identical
    /// phases entered in the same engine state replay instead of
    /// re-simulating, bit-identically.  The caller reads hit/miss
    /// counters off the cache after the batch.  IR-mode jobs ignore it.
    sim::PhaseCache *phaseCache = nullptr;
    /// Bound on the batch-scoped ProgramCache (0 = unbounded).  Bounded
    /// caches evict FIFO; an evicted (model, trace) pair re-compiles on
    /// its next use.  Results are identical either way — compilation is
    /// deterministic — only host time and peak memory change.
    std::size_t programCacheMaxEntries = 0;
};

/** Terminal state of one job within a batch. */
enum class JobStatus
{
    Ok,        ///< first attempt succeeded
    RetriedOk, ///< a retry succeeded after >= 1 failed attempts
    Failed,    ///< all attempts failed (last error captured)
    TimedOut,  ///< deadline/watchdog tripped (never retried)
    Skipped,   ///< batch cancelled before this job started
};

/** Stable lower-case tag for reports: "ok", "retried_ok", "failed",
 *  "timed_out", "skipped". */
const char *jobStatusName(JobStatus status);

/** Per-job diagnostic record filled by ExperimentRunner::runAll(). */
struct JobOutcome
{
    JobStatus status = JobStatus::Ok;
    /// Attempts consumed (1 = no retry).
    int attempts = 1;
    /// ufc::Error::kind() of the captured error ("TraceError",
    /// "ConfigError", "SimError"); empty for a clean Ok.  RetriedOk
    /// keeps the kind/message of the last *failed* attempt as the
    /// retry diagnostic.
    std::string errorKind;
    /// Captured what() of the error; empty for a clean Ok.
    std::string message;
    /// Formatted tail of the metrics flight recorder captured when the
    /// job settled as Failed/TimedOut (empty on success, or when metrics
    /// are off).  The events are process-wide — neighbouring jobs'
    /// entries appear too, which is exactly the post-mortem context a
    /// failure in a 100-job sweep needs.
    std::vector<std::string> recentEvents;
    /// Static cost-bound audit (RunOptions::boundsCheck).  Host-side
    /// only — never serialized into RunResult, so reports stay
    /// bit-identical with the gate on or off.  When boundsChecked is
    /// true the bounds below were computed before execution; a
    /// violation fails the job (SimError) with the fields still filled.
    bool boundsChecked = false;
    double cyclesLower = 0.0; ///< guaranteed min total cycles
    double cyclesUpper = 0.0; ///< guaranteed max total cycles
    double hbmLower = 0.0;    ///< guaranteed min HBM bytes
    double hbmUpper = 0.0;    ///< guaranteed max HBM bytes

    /// Did the job produce a valid result?
    bool
    ok() const
    {
        return status == JobStatus::Ok || status == JobStatus::RetriedOk;
    }
};

/**
 * A completed batch: one result slot and one outcome per job, in job
 * order.  Failed/timed-out slots hold a placeholder RunResult carrying
 * only the job's label; consult outcomes[i].ok() before reading a slot.
 */
struct BatchResult
{
    std::vector<sim::RunResult> results;
    std::vector<JobOutcome> outcomes;

    std::size_t failureCount() const;
    bool allOk() const { return failureCount() == 0; }

    /// True when the batch was cancelled before every job ran (some
    /// outcome is JobStatus::Skipped).
    bool interrupted() const;

    /// Results of the successful jobs only (job order preserved).
    std::vector<sim::RunResult> okResults() const;

    /// Throw the first failure as a typed ufc::Error (TimedOut as
    /// TimeoutError); no-op when allOk().
    void throwFirstFailure() const;
};

/**
 * Executes a batch of jobs concurrently.  Results are returned in job
 * order regardless of scheduling, so `run(jobs)` with any thread count
 * produces the same vector (only hostSeconds, a host-side measurement,
 * varies).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const RunnerConfig &cfg = RunnerConfig{});

    /**
     * Run every job with per-job fault isolation; blocks until all
     * complete.  Never throws for job-level failures — each job's
     * fate lands in its JobOutcome, and the sibling jobs' results are
     * bit-identical to a batch without the failing jobs.
     */
    BatchResult runAll(const std::vector<Job> &jobs) const;

    /** Run every job; blocks until all complete.  Convenience wrapper
     *  over runAll() that throws the first failure's typed ufc::Error
     *  (after the whole batch has finished) — for callers that treat
     *  any failure as fatal. */
    std::vector<sim::RunResult> run(const std::vector<Job> &jobs) const;

    /**
     * Execute ONE job on the calling thread with the full isolation
     * machinery (typed-error capture, bounded retries with backoff,
     * deadline mapping, flight-recorder post-mortem on failure).  This
     * is the unit of work a long-lived service schedules: the ufc_serve
     * daemon calls it per accepted request from its own worker threads,
     * passing its persistent ProgramCache so compiled programs stay
     * warm across requests.  `cache` may be null (no program sharing).
     * Never throws for job-level failures.
     */
    void runJob(const Job &job, std::size_t index,
                sim::RunResult &result, JobOutcome &outcome,
                ProgramCache *cache) const;

    /** Threads the pool would use for a batch of `jobs` jobs. */
    int effectiveThreads(std::size_t jobs) const;

    const RunnerConfig &config() const { return cfg_; }

  private:
    void runOne(const Job &job, std::size_t index,
                sim::RunResult &result, JobOutcome &outcome,
                ProgramCache *cache) const;

    RunnerConfig cfg_;
};

/**
 * Label-indexed view over a batch's results.  Lookup keys are the Job
 * labels (== RunResult::label).
 */
class ResultSet
{
  public:
    ResultSet() = default;
    explicit ResultSet(std::vector<sim::RunResult> results);

    /** Result with the given label; throws ufc::ConfigError if absent. */
    const sim::RunResult &at(const std::string &label) const;
    bool contains(const std::string &label) const;

    const std::vector<sim::RunResult> &all() const { return results_; }
    std::size_t size() const { return results_.size(); }

  private:
    std::vector<sim::RunResult> results_;
    std::unordered_map<std::string, std::size_t> byLabel_;
};

/** Canonical label format shared by the sweep builders and the benches:
 *  "<sweep>/<group>/<workload>/<machine>". */
std::string jobLabel(const std::string &sweep, const std::string &group,
                     const std::string &workload,
                     const std::string &machine);

} // namespace runner
} // namespace ufc

#endif // UFC_RUNNER_RUNNER_H
