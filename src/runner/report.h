/**
 * @file
 * Structured report emission for batches of runs: a JSON document
 * (metadata + one object per run, built on sim::RunResult::toJson())
 * and a flat CSV (RunResult::csvHeader() + one toCsvRow() per run).
 *
 * Two envelopes:
 *   "ufc.report/v1" — plain result vectors (no failure information).
 *   "ufc.report/v2" — BatchResult overloads: v1 plus a top-level
 *       "failures" array ({label, status, error_kind, message,
 *       attempts} per non-ok job), "failure_count", and per-run rows
 *       for successful jobs only.  The CSV variant appends
 *       status/attempts/error_kind/error columns to every row; failed
 *       rows keep their label with the metric columns zeroed.
 */

#ifndef UFC_RUNNER_REPORT_H
#define UFC_RUNNER_REPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "runner/runner.h"
#include "sim/stats.h"

namespace ufc {
namespace runner {

/** Schema identifier of the plain (results-only) report envelope. */
inline constexpr const char *kReportSchema = "ufc.report/v1";
/** Schema identifier of the batch (results + failures) envelope. */
inline constexpr const char *kBatchReportSchema = "ufc.report/v2";

/** Optional report metadata recorded in the JSON envelope. */
struct ReportMeta
{
    std::string generator = "ufc-runner"; ///< producing tool
    int threads = 0;          ///< pool size used (0 = unknown)
    double wallSeconds = 0.0; ///< end-to-end batch wall-clock
    /// The producing batch was cancelled (SIGINT/SIGTERM) before every
    /// job ran.  When true the envelope carries "interrupted":true and
    /// the skipped jobs appear in the failures block with status
    /// "skipped"; when false the envelope is byte-identical to one
    /// written before this field existed.
    bool interrupted = false;
};

/** Write the JSON report document. */
void writeJsonReport(const std::vector<sim::RunResult> &results,
                     std::ostream &os, const ReportMeta &meta = {});
/** Write the CSV report (header + one row per run). */
void writeCsvReport(const std::vector<sim::RunResult> &results,
                    std::ostream &os);

/** Batch-aware JSON report: successful runs plus the structured
 *  "failures" block (schema "ufc.report/v2"). */
void writeJsonReport(const BatchResult &batch, std::ostream &os,
                     const ReportMeta &meta = {});
/** Batch-aware CSV report: every job gets a row; the appended
 *  status/attempts/error_kind/error columns carry the outcome. */
void writeCsvReport(const BatchResult &batch, std::ostream &os);

/** File wrappers; throw ufc::ConfigError when the path cannot be
 *  opened. */
void saveJsonReport(const std::vector<sim::RunResult> &results,
                    const std::string &path, const ReportMeta &meta = {});
void saveCsvReport(const std::vector<sim::RunResult> &results,
                   const std::string &path);
void saveJsonReport(const BatchResult &batch, const std::string &path,
                    const ReportMeta &meta = {});
void saveCsvReport(const BatchResult &batch, const std::string &path);

} // namespace runner
} // namespace ufc

#endif // UFC_RUNNER_REPORT_H
