/**
 * @file
 * Structured report emission for batches of runs: a JSON document
 * ("ufc.report/v1": metadata + one object per run, built on
 * sim::RunResult::toJson()) and a flat CSV (RunResult::csvHeader() +
 * one toCsvRow() per run).
 */

#ifndef UFC_RUNNER_REPORT_H
#define UFC_RUNNER_REPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace ufc {
namespace runner {

/** Schema identifier of the report envelope. */
inline constexpr const char *kReportSchema = "ufc.report/v1";

/** Optional report metadata recorded in the JSON envelope. */
struct ReportMeta
{
    std::string generator = "ufc-runner"; ///< producing tool
    int threads = 0;          ///< pool size used (0 = unknown)
    double wallSeconds = 0.0; ///< end-to-end batch wall-clock
};

/** Write the JSON report document. */
void writeJsonReport(const std::vector<sim::RunResult> &results,
                     std::ostream &os, const ReportMeta &meta = {});
/** Write the CSV report (header + one row per run). */
void writeCsvReport(const std::vector<sim::RunResult> &results,
                    std::ostream &os);

/** File wrappers; ufcFatal when the path cannot be opened. */
void saveJsonReport(const std::vector<sim::RunResult> &results,
                    const std::string &path, const ReportMeta &meta = {});
void saveCsvReport(const std::vector<sim::RunResult> &results,
                   const std::string &path);

} // namespace runner
} // namespace ufc

#endif // UFC_RUNNER_REPORT_H
