/**
 * @file
 * Declarative job lists for the paper's evaluation sweeps (Figures
 * 10-14).  Each builder returns the full cross product of workloads x
 * accelerators x configurations for one figure; paperSweeps() returns
 * them all, so a single ExperimentRunner invocation reproduces the whole
 * evaluation in parallel.  The figure benches and the `sweep_all` CLI
 * both consume these definitions, keyed by the canonical jobLabel()
 * format "<sweep>/<group>/<workload>/<machine>".
 */

#ifndef UFC_RUNNER_SWEEPS_H
#define UFC_RUNNER_SWEEPS_H

#include <string>
#include <vector>

#include "runner/runner.h"

namespace ufc {
namespace runner {

/** A named batch of jobs reproducing one figure. */
struct Sweep
{
    std::string name;  ///< label prefix, e.g. "fig10a"
    std::string title; ///< human-readable description
    std::vector<Job> jobs;
};

/** Figure 10(a): CKKS suite x {UFC, SHARP} at C1-C3.
 *  Groups: parameter-set names ("C1".."C3"). */
Sweep fig10aSweep();

/** Figure 10(b): TFHE suite x {UFC, Strix} at T1-T4.
 *  Groups: parameter-set names ("T1".."T4"). */
Sweep fig10bSweep();

/** Figure 12: UFC utilization on the CKKS (C2) and TFHE (T2) suites.
 *  Groups: "ckks" and "tfhe". */
Sweep fig12Sweep();

/** Figure 13: DSE over CG-NTT network count x scratchpad capacity on the
 *  CKKS (C2) suite.  Groups: "n<networks>-s<spadMb>". */
Sweep fig13Sweep();

/** Figure 14: DSE over lanes-per-PE x scratchpad capacity on the CKKS
 *  (C2) suite.  Groups: "l<lanes>-s<spadMb>". */
Sweep fig14Sweep();

/** All of the above, in figure order. */
std::vector<Sweep> paperSweeps();

/** Concatenate several sweeps' jobs into one batch. */
std::vector<Job> allJobs(const std::vector<Sweep> &sweeps);

/** fig13/fig14 group tags (shared with the DSE benches). */
std::string dseNetworkGroup(int networks, double spadMb);
std::string dseLaneGroup(int lanes, double spadMb);

} // namespace runner
} // namespace ufc

#endif // UFC_RUNNER_SWEEPS_H
