/**
 * @file
 * Paper sweep definitions (Figures 10-14) as runner job lists.
 */

#include "runner/sweeps.h"

#include <cstdio>

#include "workloads/workloads.h"

namespace ufc {
namespace runner {

namespace {

using ModelPtr = std::shared_ptr<const sim::AcceleratorModel>;
using TracePtr = std::shared_ptr<const trace::Trace>;

std::vector<TracePtr>
share(std::vector<trace::Trace> traces)
{
    std::vector<TracePtr> out;
    out.reserve(traces.size());
    for (auto &tr : traces)
        out.push_back(std::make_shared<trace::Trace>(std::move(tr)));
    return out;
}

/** Cross one group's traces with a set of (machineTag, model) pairs. */
void
cross(Sweep &sweep, const std::string &group,
      const std::vector<TracePtr> &traces,
      const std::vector<std::pair<std::string, ModelPtr>> &machines)
{
    for (const auto &tr : traces) {
        for (const auto &[tag, model] : machines) {
            Job job;
            job.label = jobLabel(sweep.name, group, tr->name, tag);
            job.model = model;
            job.trace = tr;
            sweep.jobs.push_back(std::move(job));
        }
    }
}

} // namespace

std::string
dseNetworkGroup(int networks, double spadMb)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "n%d-s%.0f", networks, spadMb);
    return buf;
}

std::string
dseLaneGroup(int lanes, double spadMb)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "l%d-s%.0f", lanes, spadMb);
    return buf;
}

Sweep
fig10aSweep()
{
    Sweep sweep{"fig10a", "CKKS workloads, UFC vs SHARP (C1-C3)", {}};
    const auto ufcm = std::make_shared<sim::UfcModel>();
    const auto sharp = std::make_shared<sim::SharpModel>();
    for (const auto &params : {ckks::CkksParams::c1(),
                               ckks::CkksParams::c2(),
                               ckks::CkksParams::c3()}) {
        cross(sweep, params.name, share(workloads::ckksSuite(params)),
              {{"UFC", ufcm}, {"SHARP", sharp}});
    }
    return sweep;
}

Sweep
fig10bSweep()
{
    Sweep sweep{"fig10b", "TFHE workloads, UFC vs Strix (T1-T4)", {}};
    const auto ufcm = std::make_shared<sim::UfcModel>();
    const auto strix = std::make_shared<sim::StrixModel>();
    for (const auto &params : {tfhe::TfheParams::t1(),
                               tfhe::TfheParams::t2(),
                               tfhe::TfheParams::t3(),
                               tfhe::TfheParams::t4()}) {
        cross(sweep, params.name, share(workloads::tfheSuite(params)),
              {{"UFC", ufcm}, {"Strix", strix}});
    }
    return sweep;
}

Sweep
fig12Sweep()
{
    Sweep sweep{"fig12", "UFC component utilization (CKKS C2, TFHE T2)",
                {}};
    const auto ufcm = std::make_shared<sim::UfcModel>();
    cross(sweep, "ckks",
          share(workloads::ckksSuite(ckks::CkksParams::c2())),
          {{"UFC", ufcm}});
    cross(sweep, "tfhe",
          share(workloads::tfheSuite(tfhe::TfheParams::t2())),
          {{"UFC", ufcm}});
    return sweep;
}

Sweep
fig13Sweep()
{
    Sweep sweep{"fig13", "DSE: CG-NTT networks x scratchpad (CKKS C2)",
                {}};
    const auto traces =
        share(workloads::ckksSuite(ckks::CkksParams::c2()));
    for (int networks : {1, 2, 4}) {
        for (double spad : {128.0, 256.0, 512.0}) {
            auto cfg = sim::UfcConfig::tableII();
            cfg.cgNetworks = networks;
            cfg.scratchpadMb = spad;
            const auto model = std::make_shared<sim::UfcModel>(cfg);
            cross(sweep, dseNetworkGroup(networks, spad), traces,
                  {{"UFC", model}});
        }
    }
    return sweep;
}

Sweep
fig14Sweep()
{
    Sweep sweep{"fig14", "DSE: lanes per PE x scratchpad (CKKS C2)", {}};
    const auto traces =
        share(workloads::ckksSuite(ckks::CkksParams::c2()));
    for (int lanes : {64, 128, 256, 512}) {
        for (double spad : {128.0, 256.0, 512.0}) {
            auto cfg = sim::UfcConfig::tableII();
            cfg.lanesPerPe = lanes;
            cfg.butterfliesPerPe = lanes / 2;
            cfg.globalNocWordsPerCycle = 64 * lanes * 2;
            cfg.scratchpadMb = spad;
            const auto model = std::make_shared<sim::UfcModel>(cfg);
            cross(sweep, dseLaneGroup(lanes, spad), traces,
                  {{"UFC", model}});
        }
    }
    return sweep;
}

std::vector<Sweep>
paperSweeps()
{
    std::vector<Sweep> sweeps;
    sweeps.push_back(fig10aSweep());
    sweeps.push_back(fig10bSweep());
    sweeps.push_back(fig12Sweep());
    sweeps.push_back(fig13Sweep());
    sweeps.push_back(fig14Sweep());
    return sweeps;
}

std::vector<Job>
allJobs(const std::vector<Sweep> &sweeps)
{
    std::vector<Job> jobs;
    for (const auto &sweep : sweeps)
        jobs.insert(jobs.end(), sweep.jobs.begin(), sweep.jobs.end());
    return jobs;
}

} // namespace runner
} // namespace ufc
