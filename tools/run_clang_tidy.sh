#!/usr/bin/env sh
# Run clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit in a compile_commands.json build.
#
#   ./tools/run_clang_tidy.sh [BUILD_DIR] [-- EXTRA_CLANG_TIDY_ARGS...]
#
# BUILD_DIR defaults to ./build and must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the tier-1 build recipe already
# does).  Exit codes: 0 clean, 1 findings (WarningsAsErrors promotes
# every finding), 2 usage/environment error.  When clang-tidy is not
# installed (e.g. the gcc-only dev container) the script reports that
# and exits 0 so local workflows don't hard-require the tool; CI
# installs it and therefore gets the real run.
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir="${1:-$repo_root/build}"
shift 2>/dev/null || true
[ "${1:-}" = "--" ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping" \
         "(install clang-tidy to run the static-analysis profile)" >&2
    exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: $build_dir/compile_commands.json not found;" \
         "configure with cmake -B \"$build_dir\"" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

# First-party TUs only: the compilation database also holds GTest /
# benchmark sources we do not own.
files=$(sed -n 's/^ *"file": "\(.*\)",\{0,1\}$/\1/p' \
            "$build_dir/compile_commands.json" | sort -u |
        grep -E "^$repo_root/(src|tests|bench|examples)/")
if [ -z "$files" ]; then
    echo "run_clang_tidy: no first-party files in the database" >&2
    exit 2
fi

count=$(printf '%s\n' "$files" | wc -l)
echo "run_clang_tidy: checking $count translation units" \
     "(config: $repo_root/.clang-tidy)"

status=0
for f in $files; do
    clang-tidy -p "$build_dir" --quiet "$@" "$f" || status=1
done

if [ "$status" -eq 0 ]; then
    echo "run_clang_tidy: clean"
else
    echo "run_clang_tidy: findings reported (see above)" >&2
fi
exit $status
