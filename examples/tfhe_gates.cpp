/**
 * @file
 * Logic-scheme example: a homomorphic 4-bit ripple-carry adder built from
 * bootstrapped gates, plus a programmable bootstrap evaluating an
 * arbitrary lookup table.
 *
 * Build and run:  ./build/examples/example_tfhe_gates
 */

#include <cstdio>

#include "tfhe/gates.h"

using namespace ufc;
using namespace ufc::tfhe;

namespace {

/** Encrypt a 4-bit value as little-endian boolean LWEs. */
std::vector<LweCiphertext>
encryptNibble(u32 v, const LweSecretKey &key, const TfheParams &params,
              Rng &rng)
{
    std::vector<LweCiphertext> bits;
    for (int i = 0; i < 4; ++i)
        bits.push_back(encryptBit((v >> i) & 1, key, params, rng));
    return bits;
}

u32
decryptBits(const std::vector<LweCiphertext> &bits,
            const LweSecretKey &key)
{
    u32 v = 0;
    for (size_t i = 0; i < bits.size(); ++i)
        v |= static_cast<u32>(decryptBit(bits[i], key)) << i;
    return v;
}

} // namespace

int
main()
{
    const auto params = TfheParams::testFast();
    Rng rng(99);
    auto lweKey = LweSecretKey::generate(params.lweDim, rng);
    RingContext ring(params.ringDim);
    auto ringKey = RlweSecretKey::generate(&ring.table(params.q), rng);
    BootstrapContext bc(params, lweKey, ringKey, rng);

    // --- 4-bit ripple-carry adder: 5 bootstrapped gates per bit. ---
    const u32 a = 11, b = 6;
    auto ca = encryptNibble(a, lweKey, params, rng);
    auto cb = encryptNibble(b, lweKey, params, rng);

    std::vector<LweCiphertext> sum;
    LweCiphertext carry = encryptBit(false, lweKey, params, rng);
    for (int i = 0; i < 4; ++i) {
        auto axb = gateXor(bc, ca[i], cb[i]);
        sum.push_back(gateXor(bc, axb, carry));
        auto gen = gateAnd(bc, ca[i], cb[i]);
        auto prop = gateAnd(bc, axb, carry);
        carry = gateOr(bc, gen, prop);
    }
    sum.push_back(carry);

    const u32 got = decryptBits(sum, lweKey);
    std::printf("homomorphic adder: %u + %u = %u (expected %u)\n", a, b,
                got, a + b);

    // --- Programmable bootstrapping: evaluate f(m) = m^2 mod 4. ---
    const u64 t = 8;
    std::vector<u64> lut(t);
    for (u64 m = 0; m < t; ++m)
        lut[m] = (m * m) % 4;

    bool lutOk = true;
    for (u64 m = 0; m < t / 2; ++m) {
        auto ct = lweEncrypt(lweEncode(m, params.q, t), lweKey, params,
                             rng);
        auto out = bc.programmableBootstrap(ct, lut, t);
        const u64 dec = lweDecrypt(out, lweKey, t);
        std::printf("PBS: f(%llu) = %llu (expected %llu)\n",
                    static_cast<unsigned long long>(m),
                    static_cast<unsigned long long>(dec),
                    static_cast<unsigned long long>(lut[m]));
        lutOk = lutOk && dec == lut[m];
    }

    const bool ok = (got == a + b) && lutOk;
    std::printf(ok ? "OK\n" : "FAILED\n");
    return ok ? 0 : 1;
}
