/**
 * @file
 * Tracing-tool example (the paper's Section VI-B flow): generate the
 * ciphertext-granularity trace of a workload, save it to a file, reload
 * it, and feed it to the compiler + simulator — the same file-based
 * pipeline the paper uses between its OpenFHE tracer and its Python
 * compiler.
 *
 * Usage: example_trace_tool [output.trace]
 */

#include <cstdio>

#include "common/error.h"
#include "sim/accelerator.h"
#include "trace/serialize.h"
#include "workloads/workloads.h"

using namespace ufc;

int
main(int argc, char **argv)
try {
    const std::string path = argc > 1 ? argv[1] : "/tmp/ufc_helr.trace";

    // 1. Trace generation (the "tracing tool").
    const auto cp = ckks::CkksParams::c2();
    const auto tr = workloads::helr(cp, /*iterations=*/8);
    trace::saveTrace(tr, path);
    std::printf("traced %s: %zu high-level ops (%llu including batches) "
                "-> %s\n", tr.name.c_str(), tr.ops.size(),
                static_cast<unsigned long long>(tr.totalOps()),
                path.c_str());

    // 2. Reload (a different process would normally do this).
    const auto loaded = trace::loadTrace(path);

    // 3. Compile + simulate on UFC and on the CKKS baseline.
    sim::UfcModel ufcm;
    sim::SharpModel sharp;
    const auto u = ufcm.run(loaded);
    const auto s = sharp.run(loaded);
    std::printf("UFC:   %8.3f ms, %6.2f J (%llu primitive instructions)\n",
                1e3 * u.seconds, u.energyJ,
                static_cast<unsigned long long>(u.stats.instCount));
    std::printf("SHARP: %8.3f ms, %6.2f J\n", 1e3 * s.seconds, s.energyJ);
    std::printf("speedup %.2fx, EDP gain %.2fx\n", s.seconds / u.seconds,
                s.edp() / u.edp());

    const bool ok = u.seconds > 0 && s.seconds > u.seconds &&
                    loaded.ops.size() == tr.ops.size();
    std::printf(ok ? "OK\n" : "FAILED\n");
    return ok ? 0 : 1;
} catch (const ufc::Error &e) {
    std::fprintf(stderr, "error: %s: %s\n", e.kind().c_str(), e.what());
    return 1;
}
