/**
 * @file
 * Quickstart: encrypted SIMD arithmetic with the CKKS scheme.
 *
 * Encrypts two real vectors, computes x*y + 0.5 and a slot rotation
 * homomorphically, and checks the decrypted results.
 *
 * Build and run:  ./build/examples/example_quickstart
 */

#include <cstdio>

#include "ckks/evaluator.h"

using namespace ufc;
using namespace ufc::ckks;

int
main()
{
    // Small, fast parameters (N = 2^12, 6 limbs, 40-bit scale).
    CkksContext ctx(CkksParams::testFast());
    CkksEncoder encoder(&ctx);
    Rng rng(1234);
    CkksKeyGenerator keygen(&ctx, rng);
    CkksEncryptor encryptor(&ctx, &keygen.secretKey(), rng);
    CkksEvaluator eval(&ctx);

    const auto relinKey = keygen.makeRelinKey();
    const auto rotKey = keygen.makeRotationKey(1);

    // Two input vectors, one value per slot.
    std::vector<double> x(ctx.slots()), y(ctx.slots());
    for (size_t i = 0; i < x.size(); ++i) {
        x[i] = 0.001 * static_cast<double>(i % 1000);
        y[i] = 1.0 - x[i];
    }

    auto cx = encryptor.encrypt(encoder.encode(x, ctx.levels(),
                                               ctx.scale()));
    auto cy = encryptor.encrypt(encoder.encode(y, ctx.levels(),
                                               ctx.scale()));

    // z = x * y + 0.5, all under encryption.
    auto cz = eval.rescale(eval.multiply(cx, cy, relinKey));
    cz = eval.addPlain(cz, encoder.encodeConstant(0.5, cz.limbs,
                                                  cz.scale));

    // w = rotate(z, 1): slot i receives slot i+1.
    auto cw = eval.rotate(cz, 1, rotKey);

    auto z = encoder.decode(encryptor.decrypt(cz));
    auto w = encoder.decode(encryptor.decrypt(cw));

    double worst = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double expectZ = x[i] * y[i] + 0.5;
        worst = std::max(worst, std::abs(z[i].real() - expectZ));
        const size_t src = (i + 1) % x.size();
        const double expectW = x[src] * y[src] + 0.5;
        worst = std::max(worst, std::abs(w[i].real() - expectW));
    }

    std::printf("CKKS quickstart on %zu slots\n", x.size());
    std::printf("  z[0] = %.6f (expected %.6f)\n", z[0].real(),
                x[0] * y[0] + 0.5);
    std::printf("  w[0] = %.6f (expected %.6f)\n", w[0].real(),
                x[1] * y[1] + 0.5);
    std::printf("  worst slot error: %.2e\n", worst);
    std::printf(worst < 1e-4 ? "OK\n" : "FAILED\n");
    return worst < 1e-4 ? 0 : 1;
}
