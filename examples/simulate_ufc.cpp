/**
 * @file
 * Accelerator-simulation example: generate workload traces, run them
 * through the UFC cycle-level model and the scheme-specific baselines
 * concurrently via the experiment runner, and print a performance/energy
 * report (plus the structured JSON for one run).
 *
 * Build and run:  ./build/examples/example_simulate_ufc
 */

#include <cstdio>

#include "runner/runner.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
report(const sim::RunResult &r)
{
    std::printf("  %-12s %10.3f ms %8.1f W %10.3f J | PE %4.0f%%  "
                "NoC %4.0f%%  HBM %4.0f%%\n",
                r.machine.c_str(), 1e3 * r.seconds, r.powerW, r.energyJ,
                100.0 * r.stats.peUtilization(),
                100.0 * r.stats.utilization(isa::Resource::Noc),
                100.0 * r.stats.hbmUtilization());
}

} // namespace

int
main()
{
    const auto cp = ckks::CkksParams::c2();
    const auto tp = tfhe::TfheParams::t2();

    // The three demo workloads: a SIMD-scheme bootstrap, a logic-scheme
    // PBS batch, and the hybrid k-NN with scheme switching.
    const auto boot = std::make_shared<trace::Trace>(
        workloads::ckksBootstrapping(cp));
    const auto pbs = std::make_shared<trace::Trace>(
        workloads::pbsThroughput(tp, 512));
    const auto knn = std::make_shared<trace::Trace>(
        workloads::hybridKnn(cp, tp));

    const auto ufcm = std::make_shared<sim::UfcModel>();
    const auto sharp = std::make_shared<sim::SharpModel>();
    const auto strix = std::make_shared<sim::StrixModel>();
    const auto composed = std::make_shared<sim::ComposedModel>();

    // Declare the whole comparison as one job batch and let the runner
    // execute it across cores; results come back in job order.
    std::vector<runner::Job> jobs;
    auto add = [&](const char *label,
                   std::shared_ptr<const sim::AcceleratorModel> model,
                   std::shared_ptr<const trace::Trace> tr) {
        jobs.push_back(runner::Job{.label = label,
                                   .model = std::move(model),
                                   .trace = std::move(tr)});
    };
    add("boot/UFC", ufcm, boot);
    add("boot/SHARP", sharp, boot);
    add("pbs/UFC", ufcm, pbs);
    add("pbs/Strix", strix, pbs);
    add("knn/UFC", ufcm, knn);
    add("knn/SHARP+Strix", composed, knn);

    const runner::ExperimentRunner exec;
    const runner::ResultSet results(exec.run(jobs));

    std::printf("workload: %s (%zu ciphertext-level ops, N=2^16, "
                "dnum=%d)\n", boot->name.c_str(), boot->ops.size(),
                cp.dnum);
    report(results.at("boot/UFC"));
    report(results.at("boot/SHARP"));

    std::printf("\nworkload: %s (512 bootstraps, n=%u, N=2^10)\n",
                pbs->name.c_str(), tp.lweDim);
    report(results.at("pbs/UFC"));
    report(results.at("pbs/Strix"));

    std::printf("\nworkload: %s (hybrid, scheme switching)\n",
                knn->name.c_str());
    report(results.at("knn/UFC"));
    report(results.at("knn/SHARP+Strix"));

    std::printf("\nUFC chip: %.1f mm^2 (paper: 197.7 mm^2 @ 7 nm)\n",
                ufcm->areaMm2());

    std::printf("\nstructured result (RunResult::toJson):\n%s\n",
                results.at("knn/UFC").toJson().c_str());
    return 0;
}
