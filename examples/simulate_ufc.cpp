/**
 * @file
 * Accelerator-simulation example: generate a workload trace, run it
 * through the UFC cycle-level model and the scheme-specific baselines,
 * and print a performance/energy report.
 *
 * Build and run:  ./build/examples/example_simulate_ufc
 */

#include <cstdio>

#include "sim/accelerator.h"
#include "workloads/workloads.h"

using namespace ufc;

namespace {

void
report(const sim::RunResult &r)
{
    std::printf("  %-12s %10.3f ms %8.1f W %10.3f J | PE %4.0f%%  "
                "NoC %4.0f%%  HBM %4.0f%%\n",
                r.machine.c_str(), 1e3 * r.seconds, r.powerW, r.energyJ,
                100.0 * r.stats.peUtilization(),
                100.0 * r.stats.utilization(isa::Resource::Noc),
                100.0 * r.stats.hbmUtilization());
}

} // namespace

int
main()
{
    // A SIMD-scheme workload: CKKS bootstrapping at the paper's C2
    // parameters, on UFC and on SHARP.
    const auto cp = ckks::CkksParams::c2();
    const auto boot = workloads::ckksBootstrapping(cp);
    std::printf("workload: %s (%zu ciphertext-level ops, N=2^16, "
                "dnum=%d)\n", boot.name.c_str(), boot.ops.size(),
                cp.dnum);

    sim::UfcModel ufcm;
    sim::SharpModel sharp;
    report(ufcm.run(boot));
    report(sharp.run(boot));

    // A logic-scheme workload: 512 programmable bootstraps at T2, on UFC
    // and on Strix.
    const auto tp = tfhe::TfheParams::t2();
    const auto pbs = workloads::pbsThroughput(tp, 512);
    std::printf("\nworkload: %s (512 bootstraps, n=%u, N=2^10)\n",
                pbs.name.c_str(), tp.lweDim);

    sim::StrixModel strix;
    report(ufcm.run(pbs));
    report(strix.run(pbs));

    // The hybrid workload on UFC vs the composed two-chip system.
    const auto knn = workloads::hybridKnn(cp, tp);
    std::printf("\nworkload: %s (hybrid, scheme switching)\n",
                knn.name.c_str());
    sim::ComposedModel composed;
    report(ufcm.run(knn));
    report(composed.run(knn));

    std::printf("\nUFC chip: %.1f mm^2 (paper: 197.7 mm^2 @ 7 nm)\n",
                ufcm.areaMm2());
    return 0;
}
