/**
 * @file
 * Hybrid-scheme example: the k-nearest-neighbour flow of the paper's
 * Figure 1 on small parameters — SIMD distance computation in CKKS,
 * extraction to LWE, an exact encrypted comparison tournament in TFHE,
 * and ring packing of the winner's index bits.
 *
 * Build and run:  ./build/examples/example_hybrid_knn
 */

#include <cstdio>

#include "ckks/evaluator.h"
#include "switching/repack.h"
#include "switching/scheme_switch.h"
#include "tfhe/gates.h"

using namespace ufc;

int
main()
{
    // ------------------------------------------------------------------
    // Setup: CKKS context (SIMD arithmetic) + TFHE context (comparisons)
    // + the bridges between them.
    // ------------------------------------------------------------------
    ckks::CkksContext cctx(ckks::CkksParams::testFast());
    ckks::CkksEncoder encoder(&cctx);
    Rng rng(31337);
    ckks::CkksKeyGenerator keygen(&cctx, rng);
    ckks::CkksEncryptor encryptor(&cctx, &keygen.secretKey(), rng);

    auto tparams = tfhe::TfheParams::testFast();
    auto tfheKey = tfhe::LweSecretKey::generate(tparams.lweDim, rng);
    RingContext tring(tparams.ringDim);
    auto tfheRingKey =
        tfhe::RlweSecretKey::generate(&tring.table(tparams.q), rng);
    tfhe::BootstrapContext bc(tparams, tfheKey, tfheRingKey, rng);
    switching::CkksToTfheBridge bridge(cctx, keygen.secretKey(), tfheKey,
                                       tparams, rng);

    // ------------------------------------------------------------------
    // Phase 1 (CKKS): quantized squared distances from the query to four
    // database points, computed slot-wise and placed into coefficients.
    // Message space t = 16 (distances quantized to [0, 8)).
    // ------------------------------------------------------------------
    const u64 t = 16;
    const double query[2] = {0.3, 0.7};
    const double db[4][2] = {
        {0.9, 0.1}, {0.35, 0.6}, {0.0, 0.0}, {0.5, 0.2}};

    // For this small demo the distance arithmetic is done on plaintext
    // scales but carried through encryption: d_i = round(8*||q - p_i||^2)
    // encoded into coefficient i at scale q0/t, then encrypted.
    std::vector<double> distCoeffs(4);
    for (int i = 0; i < 4; ++i) {
        const double dx = query[0] - db[i][0];
        const double dy = query[1] - db[i][1];
        distCoeffs[i] = std::floor(8.0 * (dx * dx + dy * dy));
        if (distCoeffs[i] > 7.0)
            distCoeffs[i] = 7.0;
    }
    const double scale =
        static_cast<double>(cctx.qAt(0)) / static_cast<double>(t);
    auto distCt = encryptor.encrypt(
        encoder.encodeCoefficients(distCoeffs, 1, scale));
    std::printf("quantized encrypted distances: %g %g %g %g\n",
                distCoeffs[0], distCoeffs[1], distCoeffs[2],
                distCoeffs[3]);

    // ------------------------------------------------------------------
    // Phase 2 (switch): extract each distance as a TFHE LWE.
    // ------------------------------------------------------------------
    std::vector<tfhe::LweCiphertext> distances;
    for (u64 i = 0; i < 4; ++i)
        distances.push_back(bridge.convert(distCt, i));

    // ------------------------------------------------------------------
    // Phase 3 (TFHE): exact comparison tournament.  less(x, y) is a sign
    // PBS on x - y; MUX-style selection keeps the smaller distance's
    // one-hot indicator.
    // ------------------------------------------------------------------
    auto lessThan = [&](const tfhe::LweCiphertext &x,
                        const tfhe::LweCiphertext &y) {
        // diff = x - y has phase in (-q/2, q/2); the sign bootstrap
        // returns +q/8 when the phase is in [0, q/2), i.e. x >= y.
        tfhe::LweCiphertext diff = x;
        diff.subInPlace(y);
        auto geBit = bc.signBootstrap(diff);
        return tfhe::gateNot(geBit); // true iff x < y
    };

    // Round 1: winners of (0,1) and (2,3).
    auto b01 = lessThan(distances[0], distances[1]); // d0 < d1 ?
    auto b23 = lessThan(distances[2], distances[3]);

    // Select the winning distances with bootstrapped arithmetic MUX:
    // min = b*x + (1-b)*y done as gates on quantized bits would be
    // costly; instead compare cross pairs directly for the final.
    // winner01 = b01 ? d0 : d1 — realized by comparing both candidates
    // against both of the other bracket's candidates would blow up, so
    // use the standard trick: final = min over pairwise comparisons.
    auto b02 = lessThan(distances[0], distances[2]);
    auto b03 = lessThan(distances[0], distances[3]);
    auto b12 = lessThan(distances[1], distances[2]);
    auto b13 = lessThan(distances[1], distances[3]);

    // One-hot winner bits: w_i = AND of i's wins.
    std::vector<tfhe::LweCiphertext> oneHot;
    oneHot.push_back(tfhe::gateAnd(bc, b01, tfhe::gateAnd(bc, b02, b03)));
    oneHot.push_back(tfhe::gateAnd(bc, tfhe::gateNot(b01),
                                   tfhe::gateAnd(bc, b12, b13)));
    oneHot.push_back(tfhe::gateAnd(
        bc, tfhe::gateNot(b02),
        tfhe::gateAnd(bc, tfhe::gateNot(b12), b23)));
    oneHot.push_back(tfhe::gateAnd(
        bc, tfhe::gateNot(b03),
        tfhe::gateAnd(bc, tfhe::gateNot(b13), tfhe::gateNot(b23))));

    // ------------------------------------------------------------------
    // Phase 4 (switch): normalize the indicator bits with a programmable
    // bootstrap into an odd message space and repack them into one RLWE.
    // ------------------------------------------------------------------
    // Gate booleans sit at +-q/8; after an additive q/8 shift a true bit
    // has phase q/4 (message 2 in Z_8) and a false bit phase 0 (message
    // 0), so a LUT bootstrap re-encodes them exactly into the odd packing
    // domain Z_5.
    const u64 tOdd = 5;
    std::vector<u64> toOdd(8, 0);
    toOdd[2] = 1;

    const u64 packN = 64;
    RingContext packRing(packN);
    auto packRingKey = tfhe::RlweSecretKey::generate(
        &packRing.table(tparams.q), rng);
    Gadget packGadget(tparams.q, 8, 3);
    switching::RingPacker packer(packRingKey, packGadget, tparams.rlweSigma,
                                 rng);
    switching::LweSwitchKey toPackKey(tfheKey, packer.inputLweKey(),
                                      tparams.q, tparams.ksLogBase,
                                      tparams.ksLevels, tparams.lweSigma,
                                      rng);

    std::vector<tfhe::LweCiphertext> packInputs;
    for (auto &bit : oneHot) {
        // Normalize: PBS outputs lweEncode(1 or 0, q, 5).
        tfhe::LweCiphertext shifted = bit;
        shifted.addConstant(tparams.q / 8);
        auto norm = bc.programmableBootstrap(shifted, toOdd, 8, tOdd);
        packInputs.push_back(toPackKey.apply(norm));
    }

    const auto packed = packer.pack(packInputs);
    const Poly phase = tfhe::rlwePhase(packed, packRingKey);
    const u64 factorInv = invMod(packer.traceFactor(tOdd), tOdd);

    // ------------------------------------------------------------------
    // Verify against the plaintext computation.
    // ------------------------------------------------------------------
    int expectWinner = 0;
    for (int i = 1; i < 4; ++i)
        if (distCoeffs[i] < distCoeffs[expectWinner])
            expectWinner = i;

    bool ok = true;
    std::printf("packed one-hot winner indicator: ");
    for (u64 i = 0; i < 4; ++i) {
        const u64 raw = tfhe::lweDecode(phase[i], tparams.q, tOdd);
        const u64 m = mulMod(raw, factorInv, tOdd);
        std::printf("%llu ", static_cast<unsigned long long>(m));
        ok = ok && (m == (i == static_cast<u64>(expectWinner) ? 1u : 0u));
    }
    std::printf("(expected winner: point %d)\n", expectWinner);
    std::printf(ok ? "OK\n" : "FAILED\n");
    return ok ? 0 : 1;
}
