/**
 * @file
 * Encrypted neural-network inference on the logic scheme — a miniature
 * of the paper's ZAMA-NN workload: plaintext-weight dense layers over
 * radix-encoded encrypted activations, with one programmable bootstrap
 * per activation.
 *
 * Build and run:  ./build/examples/example_encrypted_nn
 */

#include <cstdio>

#include "tfhe/integer.h"

using namespace ufc;
using namespace ufc::tfhe;

int
main()
{
    const auto params = TfheParams::testFast();
    Rng rng(4242);
    auto lweKey = LweSecretKey::generate(params.lweDim, rng);
    RingContext ring(params.ringDim);
    auto ringKey = RlweSecretKey::generate(&ring.table(params.q), rng);
    BootstrapContext bc(params, lweKey, ringKey, rng);
    RadixArithmetic radix(&bc, /*digitBits=*/2);

    // A toy 3-input -> 2-hidden -> 1-output network with small positive
    // integer weights; activations are clamped digit-wise (a staircase
    // nonlinearity evaluated by PBS).
    const u64 inputs[3] = {2, 1, 3};
    const u64 w1[2][3] = {{1, 2, 1}, {2, 1, 1}};
    const u64 w2[2] = {1, 2};
    const std::vector<u64> clampLut = {0, 1, 2, 2}; // digit clamp at 2

    // Encrypt the inputs as 3-digit (6-bit) radix integers.
    std::vector<std::vector<LweCiphertext>> x;
    for (u64 v : inputs)
        x.push_back(radix.encrypt(v, 3, lweKey, params, rng));

    // Layer 1: h_j = clamp(sum_i w1[j][i] * x_i).
    std::vector<std::vector<LweCiphertext>> h;
    for (int j = 0; j < 2; ++j) {
        std::vector<LweCiphertext> acc =
            radix.scalarMul(x[0], w1[j][0]);
        for (int i = 1; i < 3; ++i)
            acc = radix.add(acc, radix.scalarMul(x[i], w1[j][i]));
        h.push_back(radix.mapDigits(acc, clampLut));
    }

    // Layer 2: y = w2[0]*h_0 + w2[1]*h_1.
    auto y = radix.add(radix.scalarMul(h[0], w2[0]),
                       radix.scalarMul(h[1], w2[1]));

    // Plaintext reference.
    auto clamp = [&](u64 v) {
        u64 out = 0;
        for (int d = 0; d < 3; ++d) {
            u64 dig = (v >> (2 * d)) & 3;
            out |= clampLut[dig] << (2 * d);
        }
        return out;
    };
    u64 refH[2];
    for (int j = 0; j < 2; ++j) {
        u64 acc = 0;
        for (int i = 0; i < 3; ++i)
            acc += w1[j][i] * inputs[i];
        refH[j] = clamp(acc & 0x3f);
    }
    const u64 refY = (w2[0] * refH[0] + w2[1] * refH[1]) & 0x3f;

    const u64 got = radix.decrypt(y, lweKey) & 0x3f;
    std::printf("encrypted NN inference: y = %llu (expected %llu)\n",
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(refY));
    std::printf(got == refY ? "OK\n" : "FAILED\n");
    return got == refY ? 0 : 1;
}
